// Extension: browser caching composed with the paper's technique.
//
// The paper measures cold loads.  Real sessions revisit sites; with a
// session-persistent cache the revisit skips most transfers outright — an
// orthogonal saving that *stacks* with the computation reordering.  This
// bench replays a revisit-heavy session (each benchmark site visited twice)
// under the four combinations of {stock, energy-aware} x {no cache, cache}.
#include "bench_common.hpp"

#include "core/session.hpp"

namespace {

using namespace eab;

struct Totals {
  Joules energy = 0;
  Seconds delay = 0;
};

Totals run(const std::vector<core::PageVisit>& visits,
           core::SessionPolicy policy, bool cache) {
  core::SessionConfig config;
  config.policy = policy;
  config.threshold = 9.0;
  config.stack.use_browser_cache = cache;
  const auto result = core::run_session(visits, config, 5);
  return {result.energy.with_reading_j, result.total_load_delay};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_ext_cache",
          "session cache x computation reordering", {"EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Extension", "session cache x computation reordering");

  // Revisit-heavy session: the user reads a page, follows a link, comes
  // straight back — each site visited twice back to back (a far-apart
  // second visit would be evicted from the 4 MB cache, as an LRU should).
  const auto specs = corpus::full_benchmark();
  std::vector<core::PageVisit> visits;
  for (const auto& spec : specs) {
    visits.push_back({&spec, 15.0});
    visits.push_back({&spec, 15.0});
  }

  const Totals baseline = run(visits, core::SessionPolicy::kBaseline, false);
  TextTable table({"configuration", "energy saving", "delay saving"});
  struct Case {
    const char* name;
    core::SessionPolicy policy;
    bool cache;
  };
  for (const Case c : {Case{"stock + cache", core::SessionPolicy::kBaseline, true},
                       Case{"energy-aware (Accurate-9)", core::SessionPolicy::kAccurate, false},
                       Case{"energy-aware + cache", core::SessionPolicy::kAccurate, true}}) {
    const Totals totals = run(visits, c.policy, c.cache);
    table.add_row({c.name,
                   format_percent(bench::saving(baseline.energy, totals.energy)),
                   format_percent(bench::saving(baseline.delay, totals.delay))});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nthe two mechanisms are orthogonal: the cache removes revisit\n"
              "transfers, the reordering compacts the ones that remain, and\n"
              "the combination beats either alone.\n");
  return 0;
}
