// Regenerates Fig 4: the traffic shape of opening espn.go.com/sports with
// the stock browser versus pulling the same bytes through a raw socket.
//
// Paper measurements: the browser needs 47 s for 760 KB because transfers
// are spread across the whole load; the socket needs ~8 s.  Absolute times
// differ on our simulated link; the shape — scattered bursts vs one block —
// is the reproduced result.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_fig04_traffic_shape",
          "traffic shape: browser load vs socket bulk", {"EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Fig 4", "traffic shape: browser load vs socket bulk");

  const corpus::PageSpec page = corpus::espn_sports_spec();
  const core::Scenario scenario =
      core::ScenarioBuilder(browser::PipelineMode::kOriginal).build();
  const auto load = scenario.run_single(page);
  const auto bulk = scenario.run_bulk(load.bytes_fetched);

  std::printf("page bytes: %.0f KB in %d objects\n\n",
              to_kilobytes(load.bytes_fetched), load.metrics.objects_fetched);

  auto print_bins = [](const char* label, const PowerTimeline& rate,
                       Seconds until) {
    std::printf("%s (KB per 0.5 s bin):\n  ", label);
    int printed = 0;
    for (Seconds t = 0; t < until; t += 0.5) {
      const double kb = rate.energy(t, t + 0.5) / 1024.0;  // bytes -> KB
      std::printf("%5.1f", kb);
      if (++printed % 16 == 0) std::printf("\n  ");
    }
    std::printf("\n");
  };
  print_bins("browser (original pipeline)", load.link_rate,
             load.metrics.transmission_done);
  std::printf("\n");
  print_bins("raw socket", bulk.link_rate, bulk.finished);

  std::printf("\nbrowser transmission time : %5.1f s  (paper: 47 s)\n",
              load.metrics.transmission_time());
  std::printf("socket bulk download      : %5.1f s  (paper: ~8 s)\n",
              bulk.duration());
  std::printf("ratio browser/socket      : %5.1fx (paper: ~5.9x)\n",
              load.metrics.transmission_time() / bulk.duration());
  return 0;
}
