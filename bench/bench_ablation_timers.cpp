// Ablation: is tuning the RRC inactivity timers enough?
//
// The paper's introduction argues that "simply adjusting the timer may not
// be a good solution for saving power": short timers drop the radio early
// but make every follow-up transfer pay the promotion delay and energy.
// This bench sweeps T1/T2 for the stock browser over a browsing session and
// compares the best timer setting against the energy-aware system, measuring
// both energy and the user-visible delay.
#include "bench_common.hpp"

#include "core/session.hpp"

namespace {

using namespace eab;

struct Outcome {
  Joules energy = 0;
  Seconds delay = 0;
};

Outcome run_with(const std::vector<core::PageVisit>& visits,
                 core::SessionConfig config) {
  const auto result = core::run_session(visits, config, 3);
  return {result.energy.with_reading_j, result.total_load_delay};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_ablation_timers",
          "RRC timer tuning vs computation reordering", {"EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Ablation", "RRC timer tuning vs computation reordering");

  // One mixed session: alternating mobile/full pages, reading times spanning
  // the Fig 7 range.
  const auto mobile = corpus::mobile_benchmark();
  const auto full = corpus::full_benchmark();
  std::vector<core::PageVisit> visits;
  const double readings[] = {3, 25, 1.5, 45, 8, 90, 5, 15, 2, 30};
  for (int i = 0; i < 10; ++i) {
    visits.push_back(core::PageVisit{
        i % 2 == 0 ? &mobile[static_cast<std::size_t>(i)]
                   : &full[static_cast<std::size_t>(i)],
        readings[i]});
  }

  TextTable table({"configuration", "energy (J)", "sum load delay (s)"});
  core::SessionConfig stock;
  stock.policy = core::SessionPolicy::kBaseline;
  const Outcome reference = run_with(visits, stock);
  table.add_row({"stock browser, T1=4 T2=15 (default)",
                 format_fixed(reference.energy, 0),
                 format_fixed(reference.delay, 1)});

  for (const auto& [t1, t2] : std::vector<std::pair<double, double>>{
           {2.0, 8.0}, {1.0, 4.0}, {0.5, 2.0}, {8.0, 30.0}}) {
    core::SessionConfig config = stock;
    config.stack.rrc.t1 = t1;
    config.stack.rrc.t2 = t2;
    const Outcome outcome = run_with(visits, config);
    table.add_row({"stock browser, T1=" + format_fixed(t1, 1) +
                       " T2=" + format_fixed(t2, 0),
                   format_fixed(outcome.energy, 0),
                   format_fixed(outcome.delay, 1)});
  }

  core::SessionConfig ours;
  ours.policy = core::SessionPolicy::kAccurate;
  ours.threshold = 9.0;
  const Outcome energy_aware = run_with(visits, ours);
  table.add_row({"energy-aware system (Accurate-9)",
                 format_fixed(energy_aware.energy, 0),
                 format_fixed(energy_aware.delay, 1)});
  std::printf("%s", table.render().c_str());

  std::printf("\nshort timers trade energy against promotion delay; the\n"
              "energy-aware system beats every timer setting on BOTH axes\n"
              "at once, which is the paper's Section 1 claim.\n");
  return 0;
}
