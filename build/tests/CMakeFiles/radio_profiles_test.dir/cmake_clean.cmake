file(REMOVE_RECURSE
  "CMakeFiles/radio_profiles_test.dir/radio_profiles_test.cpp.o"
  "CMakeFiles/radio_profiles_test.dir/radio_profiles_test.cpp.o.d"
  "radio_profiles_test"
  "radio_profiles_test.pdb"
  "radio_profiles_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radio_profiles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
