file(REMOVE_RECURSE
  "CMakeFiles/browser_pipeline_test.dir/browser_pipeline_test.cpp.o"
  "CMakeFiles/browser_pipeline_test.dir/browser_pipeline_test.cpp.o.d"
  "browser_pipeline_test"
  "browser_pipeline_test.pdb"
  "browser_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browser_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
