# Empty compiler generated dependencies file for browser_pipeline_test.
# This may be replaced when dependencies are built.
