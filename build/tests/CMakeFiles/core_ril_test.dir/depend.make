# Empty dependencies file for core_ril_test.
# This may be replaced when dependencies are built.
