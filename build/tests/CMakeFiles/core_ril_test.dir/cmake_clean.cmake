file(REMOVE_RECURSE
  "CMakeFiles/core_ril_test.dir/core_ril_test.cpp.o"
  "CMakeFiles/core_ril_test.dir/core_ril_test.cpp.o.d"
  "core_ril_test"
  "core_ril_test.pdb"
  "core_ril_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ril_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
