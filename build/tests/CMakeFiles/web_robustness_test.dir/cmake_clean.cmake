file(REMOVE_RECURSE
  "CMakeFiles/web_robustness_test.dir/web_robustness_test.cpp.o"
  "CMakeFiles/web_robustness_test.dir/web_robustness_test.cpp.o.d"
  "web_robustness_test"
  "web_robustness_test.pdb"
  "web_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
