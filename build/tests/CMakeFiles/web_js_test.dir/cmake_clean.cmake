file(REMOVE_RECURSE
  "CMakeFiles/web_js_test.dir/web_js_test.cpp.o"
  "CMakeFiles/web_js_test.dir/web_js_test.cpp.o.d"
  "web_js_test"
  "web_js_test.pdb"
  "web_js_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_js_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
