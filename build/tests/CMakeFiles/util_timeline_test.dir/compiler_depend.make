# Empty compiler generated dependencies file for util_timeline_test.
# This may be replaced when dependencies are built.
