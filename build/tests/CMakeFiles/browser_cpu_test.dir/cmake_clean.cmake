file(REMOVE_RECURSE
  "CMakeFiles/browser_cpu_test.dir/browser_cpu_test.cpp.o"
  "CMakeFiles/browser_cpu_test.dir/browser_cpu_test.cpp.o.d"
  "browser_cpu_test"
  "browser_cpu_test.pdb"
  "browser_cpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browser_cpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
