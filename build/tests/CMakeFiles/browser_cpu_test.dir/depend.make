# Empty dependencies file for browser_cpu_test.
# This may be replaced when dependencies are built.
