file(REMOVE_RECURSE
  "CMakeFiles/browser_layout_test.dir/browser_layout_test.cpp.o"
  "CMakeFiles/browser_layout_test.dir/browser_layout_test.cpp.o.d"
  "browser_layout_test"
  "browser_layout_test.pdb"
  "browser_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browser_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
