# Empty dependencies file for browser_layout_test.
# This may be replaced when dependencies are built.
