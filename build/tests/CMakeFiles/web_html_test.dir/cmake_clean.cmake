file(REMOVE_RECURSE
  "CMakeFiles/web_html_test.dir/web_html_test.cpp.o"
  "CMakeFiles/web_html_test.dir/web_html_test.cpp.o.d"
  "web_html_test"
  "web_html_test.pdb"
  "web_html_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_html_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
