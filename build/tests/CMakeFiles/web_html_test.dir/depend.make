# Empty dependencies file for web_html_test.
# This may be replaced when dependencies are built.
