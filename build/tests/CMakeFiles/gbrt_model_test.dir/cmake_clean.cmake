file(REMOVE_RECURSE
  "CMakeFiles/gbrt_model_test.dir/gbrt_model_test.cpp.o"
  "CMakeFiles/gbrt_model_test.dir/gbrt_model_test.cpp.o.d"
  "gbrt_model_test"
  "gbrt_model_test.pdb"
  "gbrt_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbrt_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
