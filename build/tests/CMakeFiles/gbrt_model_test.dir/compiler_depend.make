# Empty compiler generated dependencies file for gbrt_model_test.
# This may be replaced when dependencies are built.
