# Empty compiler generated dependencies file for gbrt_tree_test.
# This may be replaced when dependencies are built.
