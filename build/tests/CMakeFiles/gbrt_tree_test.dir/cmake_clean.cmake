file(REMOVE_RECURSE
  "CMakeFiles/gbrt_tree_test.dir/gbrt_tree_test.cpp.o"
  "CMakeFiles/gbrt_tree_test.dir/gbrt_tree_test.cpp.o.d"
  "gbrt_tree_test"
  "gbrt_tree_test.pdb"
  "gbrt_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbrt_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
