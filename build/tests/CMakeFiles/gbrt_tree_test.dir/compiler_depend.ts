# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gbrt_tree_test.
