file(REMOVE_RECURSE
  "CMakeFiles/web_css_test.dir/web_css_test.cpp.o"
  "CMakeFiles/web_css_test.dir/web_css_test.cpp.o.d"
  "web_css_test"
  "web_css_test.pdb"
  "web_css_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_css_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
