file(REMOVE_RECURSE
  "CMakeFiles/net_cache_test.dir/net_cache_test.cpp.o"
  "CMakeFiles/net_cache_test.dir/net_cache_test.cpp.o.d"
  "net_cache_test"
  "net_cache_test.pdb"
  "net_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
