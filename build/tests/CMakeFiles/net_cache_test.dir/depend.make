# Empty dependencies file for net_cache_test.
# This may be replaced when dependencies are built.
