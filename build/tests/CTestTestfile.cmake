# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_rng_test[1]_include.cmake")
include("/root/repo/build/tests/util_stats_test[1]_include.cmake")
include("/root/repo/build/tests/util_timeline_test[1]_include.cmake")
include("/root/repo/build/tests/util_table_test[1]_include.cmake")
include("/root/repo/build/tests/sim_simulator_test[1]_include.cmake")
include("/root/repo/build/tests/radio_rrc_test[1]_include.cmake")
include("/root/repo/build/tests/radio_profiles_test[1]_include.cmake")
include("/root/repo/build/tests/net_link_test[1]_include.cmake")
include("/root/repo/build/tests/net_cache_test[1]_include.cmake")
include("/root/repo/build/tests/net_http_test[1]_include.cmake")
include("/root/repo/build/tests/web_html_test[1]_include.cmake")
include("/root/repo/build/tests/web_css_test[1]_include.cmake")
include("/root/repo/build/tests/web_js_test[1]_include.cmake")
include("/root/repo/build/tests/web_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/browser_cpu_test[1]_include.cmake")
include("/root/repo/build/tests/browser_layout_test[1]_include.cmake")
include("/root/repo/build/tests/browser_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/gbrt_tree_test[1]_include.cmake")
include("/root/repo/build/tests/gbrt_model_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/capacity_test[1]_include.cmake")
include("/root/repo/build/tests/core_ril_test[1]_include.cmake")
include("/root/repo/build/tests/core_controller_test[1]_include.cmake")
include("/root/repo/build/tests/core_experiment_test[1]_include.cmake")
include("/root/repo/build/tests/core_session_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
