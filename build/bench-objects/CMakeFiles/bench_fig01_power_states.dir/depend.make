# Empty dependencies file for bench_fig01_power_states.
# This may be replaced when dependencies are built.
