# Empty dependencies file for bench_ablation_gbrt.
# This may be replaced when dependencies are built.
