file(REMOVE_RECURSE
  "../bench/bench_ablation_gbrt"
  "../bench/bench_ablation_gbrt.pdb"
  "CMakeFiles/bench_ablation_gbrt.dir/bench_ablation_gbrt.cpp.o"
  "CMakeFiles/bench_ablation_gbrt.dir/bench_ablation_gbrt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gbrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
