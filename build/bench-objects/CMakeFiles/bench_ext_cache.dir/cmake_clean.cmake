file(REMOVE_RECURSE
  "../bench/bench_ext_cache"
  "../bench/bench_ext_cache.pdb"
  "CMakeFiles/bench_ext_cache.dir/bench_ext_cache.cpp.o"
  "CMakeFiles/bench_ext_cache.dir/bench_ext_cache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
