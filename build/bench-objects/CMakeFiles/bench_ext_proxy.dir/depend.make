# Empty dependencies file for bench_ext_proxy.
# This may be replaced when dependencies are built.
