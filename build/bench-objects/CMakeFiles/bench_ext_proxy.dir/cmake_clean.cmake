file(REMOVE_RECURSE
  "../bench/bench_ext_proxy"
  "../bench/bench_ext_proxy.pdb"
  "CMakeFiles/bench_ext_proxy.dir/bench_ext_proxy.cpp.o"
  "CMakeFiles/bench_ext_proxy.dir/bench_ext_proxy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
