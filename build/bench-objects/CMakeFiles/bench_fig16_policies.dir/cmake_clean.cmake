file(REMOVE_RECURSE
  "../bench/bench_fig16_policies"
  "../bench/bench_fig16_policies.pdb"
  "CMakeFiles/bench_fig16_policies.dir/bench_fig16_policies.cpp.o"
  "CMakeFiles/bench_fig16_policies.dir/bench_fig16_policies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
