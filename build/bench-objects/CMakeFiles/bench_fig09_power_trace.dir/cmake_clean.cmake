file(REMOVE_RECURSE
  "../bench/bench_fig09_power_trace"
  "../bench/bench_fig09_power_trace.pdb"
  "CMakeFiles/bench_fig09_power_trace.dir/bench_fig09_power_trace.cpp.o"
  "CMakeFiles/bench_fig09_power_trace.dir/bench_fig09_power_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_power_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
