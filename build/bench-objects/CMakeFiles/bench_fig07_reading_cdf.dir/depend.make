# Empty dependencies file for bench_fig07_reading_cdf.
# This may be replaced when dependencies are built.
