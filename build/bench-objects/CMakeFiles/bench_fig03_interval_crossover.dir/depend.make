# Empty dependencies file for bench_fig03_interval_crossover.
# This may be replaced when dependencies are built.
