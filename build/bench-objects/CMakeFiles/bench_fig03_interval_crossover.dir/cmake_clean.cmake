file(REMOVE_RECURSE
  "../bench/bench_fig03_interval_crossover"
  "../bench/bench_fig03_interval_crossover.pdb"
  "CMakeFiles/bench_fig03_interval_crossover.dir/bench_fig03_interval_crossover.cpp.o"
  "CMakeFiles/bench_fig03_interval_crossover.dir/bench_fig03_interval_crossover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_interval_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
