file(REMOVE_RECURSE
  "../bench/bench_table7_prediction_cost"
  "../bench/bench_table7_prediction_cost.pdb"
  "CMakeFiles/bench_table7_prediction_cost.dir/bench_table7_prediction_cost.cpp.o"
  "CMakeFiles/bench_table7_prediction_cost.dir/bench_table7_prediction_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_prediction_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
