# Empty compiler generated dependencies file for bench_table7_prediction_cost.
# This may be replaced when dependencies are built.
