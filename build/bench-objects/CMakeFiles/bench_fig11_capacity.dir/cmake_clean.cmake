file(REMOVE_RECURSE
  "../bench/bench_fig11_capacity"
  "../bench/bench_fig11_capacity.pdb"
  "CMakeFiles/bench_fig11_capacity.dir/bench_fig11_capacity.cpp.o"
  "CMakeFiles/bench_fig11_capacity.dir/bench_fig11_capacity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
