# Empty compiler generated dependencies file for bench_fig04_traffic_shape.
# This may be replaced when dependencies are built.
