file(REMOVE_RECURSE
  "../bench/bench_fig04_traffic_shape"
  "../bench/bench_fig04_traffic_shape.pdb"
  "CMakeFiles/bench_fig04_traffic_shape.dir/bench_fig04_traffic_shape.cpp.o"
  "CMakeFiles/bench_fig04_traffic_shape.dir/bench_fig04_traffic_shape.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_traffic_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
