# Empty compiler generated dependencies file for bench_ablation_timers.
# This may be replaced when dependencies are built.
