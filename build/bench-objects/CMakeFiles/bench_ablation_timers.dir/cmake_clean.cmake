file(REMOVE_RECURSE
  "../bench/bench_ablation_timers"
  "../bench/bench_ablation_timers.pdb"
  "CMakeFiles/bench_ablation_timers.dir/bench_ablation_timers.cpp.o"
  "CMakeFiles/bench_ablation_timers.dir/bench_ablation_timers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_timers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
