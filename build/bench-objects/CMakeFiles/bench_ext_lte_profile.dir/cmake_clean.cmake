file(REMOVE_RECURSE
  "../bench/bench_ext_lte_profile"
  "../bench/bench_ext_lte_profile.pdb"
  "CMakeFiles/bench_ext_lte_profile.dir/bench_ext_lte_profile.cpp.o"
  "CMakeFiles/bench_ext_lte_profile.dir/bench_ext_lte_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_lte_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
