
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_lte_profile.cpp" "bench-objects/CMakeFiles/bench_ext_lte_profile.dir/bench_ext_lte_profile.cpp.o" "gcc" "bench-objects/CMakeFiles/bench_ext_lte_profile.dir/bench_ext_lte_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/eab_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/capacity/CMakeFiles/eab_capacity.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/eab_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/eab_web.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/eab_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eab_net.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/eab_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eab_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gbrt/CMakeFiles/eab_gbrt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
