# Empty dependencies file for bench_fig08_transmission_time.
# This may be replaced when dependencies are built.
