# Empty dependencies file for browse_session.
# This may be replaced when dependencies are built.
