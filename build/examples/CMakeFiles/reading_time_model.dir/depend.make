# Empty dependencies file for reading_time_model.
# This may be replaced when dependencies are built.
