# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for reading_time_model.
