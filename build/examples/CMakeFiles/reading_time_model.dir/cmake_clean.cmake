file(REMOVE_RECURSE
  "CMakeFiles/reading_time_model.dir/reading_time_model.cpp.o"
  "CMakeFiles/reading_time_model.dir/reading_time_model.cpp.o.d"
  "reading_time_model"
  "reading_time_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reading_time_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
