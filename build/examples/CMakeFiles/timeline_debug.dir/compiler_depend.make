# Empty compiler generated dependencies file for timeline_debug.
# This may be replaced when dependencies are built.
