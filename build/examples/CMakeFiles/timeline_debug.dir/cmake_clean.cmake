file(REMOVE_RECURSE
  "CMakeFiles/timeline_debug.dir/timeline_debug.cpp.o"
  "CMakeFiles/timeline_debug.dir/timeline_debug.cpp.o.d"
  "timeline_debug"
  "timeline_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeline_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
