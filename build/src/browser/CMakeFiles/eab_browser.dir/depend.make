# Empty dependencies file for eab_browser.
# This may be replaced when dependencies are built.
