file(REMOVE_RECURSE
  "CMakeFiles/eab_browser.dir/cpu.cpp.o"
  "CMakeFiles/eab_browser.dir/cpu.cpp.o.d"
  "CMakeFiles/eab_browser.dir/layout.cpp.o"
  "CMakeFiles/eab_browser.dir/layout.cpp.o.d"
  "CMakeFiles/eab_browser.dir/pipeline.cpp.o"
  "CMakeFiles/eab_browser.dir/pipeline.cpp.o.d"
  "CMakeFiles/eab_browser.dir/text_render.cpp.o"
  "CMakeFiles/eab_browser.dir/text_render.cpp.o.d"
  "libeab_browser.a"
  "libeab_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eab_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
