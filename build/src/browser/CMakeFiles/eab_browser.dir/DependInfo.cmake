
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/browser/cpu.cpp" "src/browser/CMakeFiles/eab_browser.dir/cpu.cpp.o" "gcc" "src/browser/CMakeFiles/eab_browser.dir/cpu.cpp.o.d"
  "/root/repo/src/browser/layout.cpp" "src/browser/CMakeFiles/eab_browser.dir/layout.cpp.o" "gcc" "src/browser/CMakeFiles/eab_browser.dir/layout.cpp.o.d"
  "/root/repo/src/browser/pipeline.cpp" "src/browser/CMakeFiles/eab_browser.dir/pipeline.cpp.o" "gcc" "src/browser/CMakeFiles/eab_browser.dir/pipeline.cpp.o.d"
  "/root/repo/src/browser/text_render.cpp" "src/browser/CMakeFiles/eab_browser.dir/text_render.cpp.o" "gcc" "src/browser/CMakeFiles/eab_browser.dir/text_render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/web/CMakeFiles/eab_web.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eab_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eab_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/eab_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
