file(REMOVE_RECURSE
  "libeab_browser.a"
)
