file(REMOVE_RECURSE
  "libeab_web.a"
)
