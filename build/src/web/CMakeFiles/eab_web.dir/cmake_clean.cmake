file(REMOVE_RECURSE
  "CMakeFiles/eab_web.dir/css.cpp.o"
  "CMakeFiles/eab_web.dir/css.cpp.o.d"
  "CMakeFiles/eab_web.dir/dom.cpp.o"
  "CMakeFiles/eab_web.dir/dom.cpp.o.d"
  "CMakeFiles/eab_web.dir/html_parser.cpp.o"
  "CMakeFiles/eab_web.dir/html_parser.cpp.o.d"
  "CMakeFiles/eab_web.dir/html_tokenizer.cpp.o"
  "CMakeFiles/eab_web.dir/html_tokenizer.cpp.o.d"
  "CMakeFiles/eab_web.dir/js_interpreter.cpp.o"
  "CMakeFiles/eab_web.dir/js_interpreter.cpp.o.d"
  "CMakeFiles/eab_web.dir/js_lexer.cpp.o"
  "CMakeFiles/eab_web.dir/js_lexer.cpp.o.d"
  "CMakeFiles/eab_web.dir/js_parser.cpp.o"
  "CMakeFiles/eab_web.dir/js_parser.cpp.o.d"
  "libeab_web.a"
  "libeab_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eab_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
