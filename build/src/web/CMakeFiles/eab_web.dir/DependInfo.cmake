
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/web/css.cpp" "src/web/CMakeFiles/eab_web.dir/css.cpp.o" "gcc" "src/web/CMakeFiles/eab_web.dir/css.cpp.o.d"
  "/root/repo/src/web/dom.cpp" "src/web/CMakeFiles/eab_web.dir/dom.cpp.o" "gcc" "src/web/CMakeFiles/eab_web.dir/dom.cpp.o.d"
  "/root/repo/src/web/html_parser.cpp" "src/web/CMakeFiles/eab_web.dir/html_parser.cpp.o" "gcc" "src/web/CMakeFiles/eab_web.dir/html_parser.cpp.o.d"
  "/root/repo/src/web/html_tokenizer.cpp" "src/web/CMakeFiles/eab_web.dir/html_tokenizer.cpp.o" "gcc" "src/web/CMakeFiles/eab_web.dir/html_tokenizer.cpp.o.d"
  "/root/repo/src/web/js_interpreter.cpp" "src/web/CMakeFiles/eab_web.dir/js_interpreter.cpp.o" "gcc" "src/web/CMakeFiles/eab_web.dir/js_interpreter.cpp.o.d"
  "/root/repo/src/web/js_lexer.cpp" "src/web/CMakeFiles/eab_web.dir/js_lexer.cpp.o" "gcc" "src/web/CMakeFiles/eab_web.dir/js_lexer.cpp.o.d"
  "/root/repo/src/web/js_parser.cpp" "src/web/CMakeFiles/eab_web.dir/js_parser.cpp.o" "gcc" "src/web/CMakeFiles/eab_web.dir/js_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/eab_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/eab_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eab_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
