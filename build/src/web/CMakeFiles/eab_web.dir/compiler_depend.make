# Empty compiler generated dependencies file for eab_web.
# This may be replaced when dependencies are built.
