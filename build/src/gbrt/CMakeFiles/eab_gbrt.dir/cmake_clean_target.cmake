file(REMOVE_RECURSE
  "libeab_gbrt.a"
)
