file(REMOVE_RECURSE
  "CMakeFiles/eab_gbrt.dir/dataset.cpp.o"
  "CMakeFiles/eab_gbrt.dir/dataset.cpp.o.d"
  "CMakeFiles/eab_gbrt.dir/model.cpp.o"
  "CMakeFiles/eab_gbrt.dir/model.cpp.o.d"
  "CMakeFiles/eab_gbrt.dir/tree.cpp.o"
  "CMakeFiles/eab_gbrt.dir/tree.cpp.o.d"
  "libeab_gbrt.a"
  "libeab_gbrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eab_gbrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
