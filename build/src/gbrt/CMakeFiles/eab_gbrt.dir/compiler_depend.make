# Empty compiler generated dependencies file for eab_gbrt.
# This may be replaced when dependencies are built.
