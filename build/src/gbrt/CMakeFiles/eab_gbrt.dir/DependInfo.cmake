
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gbrt/dataset.cpp" "src/gbrt/CMakeFiles/eab_gbrt.dir/dataset.cpp.o" "gcc" "src/gbrt/CMakeFiles/eab_gbrt.dir/dataset.cpp.o.d"
  "/root/repo/src/gbrt/model.cpp" "src/gbrt/CMakeFiles/eab_gbrt.dir/model.cpp.o" "gcc" "src/gbrt/CMakeFiles/eab_gbrt.dir/model.cpp.o.d"
  "/root/repo/src/gbrt/tree.cpp" "src/gbrt/CMakeFiles/eab_gbrt.dir/tree.cpp.o" "gcc" "src/gbrt/CMakeFiles/eab_gbrt.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
