# Empty compiler generated dependencies file for eab_sim.
# This may be replaced when dependencies are built.
