file(REMOVE_RECURSE
  "libeab_sim.a"
)
