file(REMOVE_RECURSE
  "CMakeFiles/eab_sim.dir/simulator.cpp.o"
  "CMakeFiles/eab_sim.dir/simulator.cpp.o.d"
  "libeab_sim.a"
  "libeab_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eab_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
