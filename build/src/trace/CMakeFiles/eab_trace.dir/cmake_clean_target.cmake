file(REMOVE_RECURSE
  "libeab_trace.a"
)
