# Empty dependencies file for eab_trace.
# This may be replaced when dependencies are built.
