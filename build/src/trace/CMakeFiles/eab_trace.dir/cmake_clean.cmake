file(REMOVE_RECURSE
  "CMakeFiles/eab_trace.dir/reading_model.cpp.o"
  "CMakeFiles/eab_trace.dir/reading_model.cpp.o.d"
  "libeab_trace.a"
  "libeab_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eab_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
