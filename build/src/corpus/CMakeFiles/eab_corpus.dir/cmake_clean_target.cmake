file(REMOVE_RECURSE
  "libeab_corpus.a"
)
