# Empty dependencies file for eab_corpus.
# This may be replaced when dependencies are built.
