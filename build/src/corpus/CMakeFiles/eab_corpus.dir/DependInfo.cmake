
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/generator.cpp" "src/corpus/CMakeFiles/eab_corpus.dir/generator.cpp.o" "gcc" "src/corpus/CMakeFiles/eab_corpus.dir/generator.cpp.o.d"
  "/root/repo/src/corpus/page_spec.cpp" "src/corpus/CMakeFiles/eab_corpus.dir/page_spec.cpp.o" "gcc" "src/corpus/CMakeFiles/eab_corpus.dir/page_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/eab_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/eab_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eab_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
