file(REMOVE_RECURSE
  "CMakeFiles/eab_corpus.dir/generator.cpp.o"
  "CMakeFiles/eab_corpus.dir/generator.cpp.o.d"
  "CMakeFiles/eab_corpus.dir/page_spec.cpp.o"
  "CMakeFiles/eab_corpus.dir/page_spec.cpp.o.d"
  "libeab_corpus.a"
  "libeab_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eab_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
