file(REMOVE_RECURSE
  "libeab_net.a"
)
