
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cache.cpp" "src/net/CMakeFiles/eab_net.dir/cache.cpp.o" "gcc" "src/net/CMakeFiles/eab_net.dir/cache.cpp.o.d"
  "/root/repo/src/net/http_client.cpp" "src/net/CMakeFiles/eab_net.dir/http_client.cpp.o" "gcc" "src/net/CMakeFiles/eab_net.dir/http_client.cpp.o.d"
  "/root/repo/src/net/resource.cpp" "src/net/CMakeFiles/eab_net.dir/resource.cpp.o" "gcc" "src/net/CMakeFiles/eab_net.dir/resource.cpp.o.d"
  "/root/repo/src/net/shared_link.cpp" "src/net/CMakeFiles/eab_net.dir/shared_link.cpp.o" "gcc" "src/net/CMakeFiles/eab_net.dir/shared_link.cpp.o.d"
  "/root/repo/src/net/socket_downloader.cpp" "src/net/CMakeFiles/eab_net.dir/socket_downloader.cpp.o" "gcc" "src/net/CMakeFiles/eab_net.dir/socket_downloader.cpp.o.d"
  "/root/repo/src/net/web_server.cpp" "src/net/CMakeFiles/eab_net.dir/web_server.cpp.o" "gcc" "src/net/CMakeFiles/eab_net.dir/web_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/eab_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/eab_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
