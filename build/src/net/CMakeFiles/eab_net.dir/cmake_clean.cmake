file(REMOVE_RECURSE
  "CMakeFiles/eab_net.dir/cache.cpp.o"
  "CMakeFiles/eab_net.dir/cache.cpp.o.d"
  "CMakeFiles/eab_net.dir/http_client.cpp.o"
  "CMakeFiles/eab_net.dir/http_client.cpp.o.d"
  "CMakeFiles/eab_net.dir/resource.cpp.o"
  "CMakeFiles/eab_net.dir/resource.cpp.o.d"
  "CMakeFiles/eab_net.dir/shared_link.cpp.o"
  "CMakeFiles/eab_net.dir/shared_link.cpp.o.d"
  "CMakeFiles/eab_net.dir/socket_downloader.cpp.o"
  "CMakeFiles/eab_net.dir/socket_downloader.cpp.o.d"
  "CMakeFiles/eab_net.dir/web_server.cpp.o"
  "CMakeFiles/eab_net.dir/web_server.cpp.o.d"
  "libeab_net.a"
  "libeab_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eab_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
