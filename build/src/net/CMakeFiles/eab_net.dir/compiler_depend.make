# Empty compiler generated dependencies file for eab_net.
# This may be replaced when dependencies are built.
