file(REMOVE_RECURSE
  "CMakeFiles/eab_core.dir/experiment.cpp.o"
  "CMakeFiles/eab_core.dir/experiment.cpp.o.d"
  "CMakeFiles/eab_core.dir/ril.cpp.o"
  "CMakeFiles/eab_core.dir/ril.cpp.o.d"
  "CMakeFiles/eab_core.dir/session.cpp.o"
  "CMakeFiles/eab_core.dir/session.cpp.o.d"
  "libeab_core.a"
  "libeab_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eab_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
