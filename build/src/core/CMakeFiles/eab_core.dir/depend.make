# Empty dependencies file for eab_core.
# This may be replaced when dependencies are built.
