file(REMOVE_RECURSE
  "libeab_core.a"
)
