file(REMOVE_RECURSE
  "CMakeFiles/eab_util.dir/rng.cpp.o"
  "CMakeFiles/eab_util.dir/rng.cpp.o.d"
  "CMakeFiles/eab_util.dir/stats.cpp.o"
  "CMakeFiles/eab_util.dir/stats.cpp.o.d"
  "CMakeFiles/eab_util.dir/table.cpp.o"
  "CMakeFiles/eab_util.dir/table.cpp.o.d"
  "CMakeFiles/eab_util.dir/timeline.cpp.o"
  "CMakeFiles/eab_util.dir/timeline.cpp.o.d"
  "libeab_util.a"
  "libeab_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eab_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
