# Empty dependencies file for eab_util.
# This may be replaced when dependencies are built.
