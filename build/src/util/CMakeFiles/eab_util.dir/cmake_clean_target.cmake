file(REMOVE_RECURSE
  "libeab_util.a"
)
