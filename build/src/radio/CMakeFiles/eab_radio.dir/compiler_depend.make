# Empty compiler generated dependencies file for eab_radio.
# This may be replaced when dependencies are built.
