file(REMOVE_RECURSE
  "libeab_radio.a"
)
