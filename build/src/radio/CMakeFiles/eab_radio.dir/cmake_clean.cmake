file(REMOVE_RECURSE
  "CMakeFiles/eab_radio.dir/profiles.cpp.o"
  "CMakeFiles/eab_radio.dir/profiles.cpp.o.d"
  "CMakeFiles/eab_radio.dir/rrc.cpp.o"
  "CMakeFiles/eab_radio.dir/rrc.cpp.o.d"
  "libeab_radio.a"
  "libeab_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eab_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
