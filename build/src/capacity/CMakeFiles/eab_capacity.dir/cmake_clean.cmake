file(REMOVE_RECURSE
  "CMakeFiles/eab_capacity.dir/mgn.cpp.o"
  "CMakeFiles/eab_capacity.dir/mgn.cpp.o.d"
  "libeab_capacity.a"
  "libeab_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eab_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
