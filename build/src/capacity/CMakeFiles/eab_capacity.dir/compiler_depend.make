# Empty compiler generated dependencies file for eab_capacity.
# This may be replaced when dependencies are built.
