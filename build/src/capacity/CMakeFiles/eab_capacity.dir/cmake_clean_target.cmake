file(REMOVE_RECURSE
  "libeab_capacity.a"
)
