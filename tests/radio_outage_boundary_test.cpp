// Radio-link-failure robustness: drop coverage at every fetch-settle
// boundary (plus one mid-first-fetch instant, plus a deterministic instant
// inside every RRC state and signalling phase) under both pipelines, and
// assert the degraded session leaves no residue anywhere in the stack — no
// queued or in-flight fetches, no live link flows, no leaked RRC transfer
// markers — and that the trace auditor accepts the recording,
// out-of-service energy reconciliation included.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "browser/cpu.hpp"
#include "browser/pipeline.hpp"
#include "core/ril.hpp"
#include "corpus/generator.hpp"
#include "net/http_client.hpp"
#include "net/outage.hpp"
#include "net/shared_link.hpp"
#include "net/web_server.hpp"
#include "obs/audit.hpp"
#include "obs/trace.hpp"
#include "radio/rrc.hpp"
#include "sim/simulator.hpp"

namespace eab {
namespace {

corpus::PageSpec outage_spec() {
  corpus::PageSpec spec;
  spec.site = "outage.example";
  spec.mobile = false;
  spec.html_bytes = kilobytes(10);
  spec.css_files = 2;
  spec.css_bytes = kilobytes(3);
  spec.css_images = 2;
  spec.css_image_bytes = kilobytes(2);
  spec.js_files = 2;
  spec.js_bytes = kilobytes(2);
  spec.js_busy_iterations = 300;
  spec.js_images = 1;
  spec.js_image_bytes = kilobytes(2);
  spec.html_images = 6;
  spec.image_bytes = kilobytes(4);
  spec.anchors = 6;
  spec.paragraphs = 8;
  return spec;
}

/// The full single-load stack plus a manually-driven outage injector (its
/// plan is disabled, so nothing is scheduled; tests call coverage_lost /
/// coverage_restored at the instants under test).
struct Stack {
  sim::Simulator sim;
  net::WebServer server;
  radio::RrcConfig rrc_config;
  radio::RadioPowerModel power;
  radio::LinkConfig link_config;
  radio::RrcMachine rrc;
  net::SharedLink link;
  net::HttpClient client;
  browser::CpuScheduler cpu;
  core::RilStateSwitcher ril;
  net::OutageInjector outage;
  obs::TraceRecorder trace;
  browser::PageLoad load;
  std::string url;
  int done_count = 0;
  browser::LoadMetrics metrics;

  explicit Stack(browser::PipelineMode mode)
      : rrc(sim, rrc_config, power),
        link(sim, link_config.dch_bandwidth),
        client(sim, server, link, rrc, link_config),
        cpu(sim, power.cpu_busy_extra),
        ril(sim, rrc),
        outage(sim, link, rrc, radio::OutagePlan{}),
        load(sim, client, cpu,
             [mode] {
               browser::PipelineConfig config;
               config.mode = mode;
               return config;
             }(),
             1234) {
    corpus::PageGenerator generator(1);
    url = generator.host_page(outage_spec(), server);
    if (mode == browser::PipelineMode::kEnergyAware) {
      load.set_on_transmission_complete([this] { ril.request_idle(); });
    }
    // The RLF hook mirrors the assembly paths: the client settles its
    // in-flight attempts (releasing transfer markers) inside the declaration.
    rrc.set_on_rlf([this] { client.on_radio_lost(); });
    rrc.set_trace(&trace);
    link.set_trace(&trace);
    client.set_trace(&trace);
    ril.set_trace(&trace);
    outage.set_trace(&trace);
    load.set_trace(&trace);
  }

  void start() {
    load.start(url, [this](const browser::LoadMetrics& m) {
      ++done_count;
      metrics = m;
    });
  }

  /// Schedules one coverage hole [at, at + duration).  The default duration
  /// outlasts the T313 detection window (rrc_config.rlf_detect = 1 s), so
  /// the hole always declares RLF when an RRC connection is up.
  void hole_at(Seconds at, Seconds duration = 1.5) {
    sim.schedule_at(at, [this] { outage.coverage_lost(); });
    sim.schedule_at(at + duration, [this] { outage.coverage_restored(); });
  }

  void run_to_done() {
    while (done_count == 0 && sim.step()) {
    }
    ASSERT_EQ(done_count, 1);
  }
};

/// Asserts the whole stack is residue-free, drains the radio timers, and
/// replays the recording through the cross-layer auditor.
void expect_clean_teardown(Stack& stack, const char* context) {
  EXPECT_EQ(stack.client.queued(), 0u) << context;
  EXPECT_EQ(stack.client.in_flight(), 0) << context;
  EXPECT_EQ(stack.link.active_flows(), 0u) << context;
  EXPECT_EQ(stack.rrc.active_transfers(), 0) << context;
  EXPECT_EQ(stack.done_count, 1) << context << ": done must fire exactly once";

  // Past every backoff (0.5 + 1 + 2 + 4 s), re-establishment exchange
  // (4 x 1.2 s) and the T1 + T2 inactivity ladder, the radio must be IDLE
  // with no timers pending.
  const Seconds t_end = stack.metrics.final_display + 40.0;
  stack.sim.run_until(t_end);
  EXPECT_EQ(stack.rrc.state(), radio::RrcState::kIdle) << context;
  EXPECT_EQ(stack.rrc.phase(), radio::RadioPhase::kStable) << context;

  obs::AuditInputs inputs;
  inputs.rrc = stack.rrc_config;
  inputs.power = stack.power;
  inputs.max_retries = stack.client.retry_policy().max_retries;
  inputs.radio_energy = stack.rrc.power().energy(0.0, t_end);
  inputs.t_end = t_end;
  const obs::AuditReport report = obs::TraceAuditor().audit(stack.trace, inputs);
  EXPECT_TRUE(report.ok()) << context << "\n" << report.summary();
}

/// Coverage-hole instants for one mode: just inside the first fetch, then a
/// hair after every distinct fetch-settle time of a clean reference run.
const std::vector<Seconds>& boundaries_for(browser::PipelineMode mode) {
  static std::map<browser::PipelineMode, std::vector<Seconds>> cache;
  auto it = cache.find(mode);
  if (it != cache.end()) return it->second;

  Stack reference(mode);
  reference.start();
  reference.run_to_done();
  std::vector<Seconds> times = {0.05};
  for (const obs::TraceEvent& e : reference.trace.events()) {
    if (e.kind == obs::TraceKind::kHttpFetchSettled) {
      times.push_back(e.t + 1e-6);
    }
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return cache.emplace(mode, std::move(times)).first->second;
}

class OutageAtBoundary : public ::testing::TestWithParam<int> {};

TEST_P(OutageAtBoundary, DegradedSessionLeavesNoResidue) {
  const int index = GetParam();
  bool exercised = false;
  for (const browser::PipelineMode mode :
       {browser::PipelineMode::kOriginal, browser::PipelineMode::kEnergyAware}) {
    const std::vector<Seconds>& boundaries = boundaries_for(mode);
    if (index >= static_cast<int>(boundaries.size())) continue;
    exercised = true;
    const Seconds hole_at = boundaries[static_cast<std::size_t>(index)];

    Stack stack(mode);
    stack.start();
    stack.hole_at(hole_at);
    stack.run_to_done();

    char context[96];
    std::snprintf(context, sizeof context, "mode=%d hole_at=%.6f",
                  static_cast<int>(mode), hole_at);
    expect_clean_teardown(stack, context);
  }
  if (!exercised) {
    GTEST_SKIP() << "no fetch boundary with index " << index;
  }
}

INSTANTIATE_TEST_SUITE_P(EveryFetchBoundary, OutageAtBoundary,
                         ::testing::Range(0, 28));

/// One deterministic instant inside every RRC state and signalling phase a
/// clean reference run visits: the midpoint of each state's first residency
/// span, plus the midpoint of the first promotion and the first release
/// signalling exchange.
std::vector<Seconds> state_instants_for(browser::PipelineMode mode) {
  Stack reference(mode);
  reference.start();
  reference.run_to_done();
  const Seconds t_end = reference.metrics.final_display + 25.0;
  reference.sim.run_until(t_end);

  std::vector<Seconds> instants;
  std::map<std::int64_t, bool> seen_state;
  for (const obs::TraceSpan& span : reference.trace.rrc_state_spans(t_end)) {
    if (seen_state[span.tag]) continue;
    seen_state[span.tag] = true;
    instants.push_back(span.begin + span.duration() / 2);
  }
  // Mid-promotion and mid-release: coverage dying while signalling is in
  // flight exercises the waiting-queue cancellation paths.
  Seconds pending_promotion = -1, pending_release = -1;
  bool promotion_done = false, release_done = false;
  for (const obs::TraceEvent& e : reference.trace.events()) {
    switch (e.kind) {
      case obs::TraceKind::kRrcPromotionStart:
        if (!promotion_done) pending_promotion = e.t;
        break;
      case obs::TraceKind::kRrcPromotionDone:
        if (!promotion_done && pending_promotion >= 0) {
          instants.push_back((pending_promotion + e.t) / 2);
          promotion_done = true;
        }
        break;
      case obs::TraceKind::kRrcReleaseStart:
        if (!release_done) pending_release = e.t;
        break;
      case obs::TraceKind::kRrcReleaseDone:
        if (!release_done && pending_release >= 0) {
          instants.push_back((pending_release + e.t) / 2);
          release_done = true;
        }
        break;
      default:
        break;
    }
  }
  std::sort(instants.begin(), instants.end());
  instants.erase(std::unique(instants.begin(), instants.end()),
                 instants.end());
  return instants;
}

TEST(OutageAtEveryRrcState, DegradedSessionLeavesNoResidue) {
  for (const browser::PipelineMode mode :
       {browser::PipelineMode::kOriginal, browser::PipelineMode::kEnergyAware}) {
    const std::vector<Seconds> instants = state_instants_for(mode);
    ASSERT_GE(instants.size(), 3u) << "reference run must visit IDLE, a "
                                      "promotion and DCH at minimum";
    for (const Seconds at : instants) {
      Stack stack(mode);
      stack.start();
      stack.hole_at(at);
      stack.run_to_done();

      char context[96];
      std::snprintf(context, sizeof context, "mode=%d state-instant=%.6f",
                    static_cast<int>(mode), at);
      expect_clean_teardown(stack, context);
    }
  }
}

TEST(OutageRecovery, ShortFadeIsAbsorbedWithoutRlf) {
  // A hole shorter than the T313 detection window must be invisible to the
  // RRC layer: no RLF, no OUT_OF_SERVICE residency, load completes.
  Stack stack(browser::PipelineMode::kOriginal);
  stack.start();
  stack.hole_at(0.5, /*duration=*/0.4);  // rlf_detect defaults to 1 s
  stack.run_to_done();
  EXPECT_EQ(stack.rrc.rlf_count(), 0);
  EXPECT_EQ(stack.rrc.time_in(radio::RrcState::kOutOfService), 0.0);
  expect_clean_teardown(stack, "short-fade");
}

/// A hole instant with the radio on DCH and fetches in flight: a hair after
/// the first settle of a clean reference run (the promotion is long over,
/// the remaining sub-resources are still transferring).
Seconds mid_dch_instant() {
  const std::vector<Seconds>& boundaries =
      boundaries_for(browser::PipelineMode::kOriginal);
  EXPECT_GE(boundaries.size(), 2u);
  return boundaries[1];
}

TEST(OutageRecovery, RlfMidLoadReestablishesAndSettlesRadioLost) {
  // A hole that outlasts T313 mid-DCH declares RLF: the in-flight fetches
  // settle as radio-lost (then re-queue under the retry budget), the UE
  // camps OUT_OF_SERVICE, and re-establishment brings the session back.
  Stack stack(browser::PipelineMode::kOriginal);
  stack.start();
  stack.hole_at(mid_dch_instant());
  stack.run_to_done();
  EXPECT_GE(stack.rrc.rlf_count(), 1);
  EXPECT_GE(stack.rrc.reestablish_ok(), 1);
  EXPECT_GT(stack.rrc.time_in(radio::RrcState::kOutOfService), 0.0);
  expect_clean_teardown(stack, "rlf-mid-load");
}

TEST(OutageRecovery, RlfWithExhaustedRetryBudgetSettlesRadioLost) {
  // With no retry budget the attempts in flight at the RLF cannot re-queue:
  // they must settle as radio-lost and the load must finish degraded.
  Stack stack(browser::PipelineMode::kOriginal);
  net::RetryPolicy no_retries;
  no_retries.max_retries = 0;
  stack.client.set_retry_policy(no_retries);
  stack.start();
  stack.hole_at(mid_dch_instant());
  stack.run_to_done();
  EXPECT_GE(stack.rrc.rlf_count(), 1);
  bool saw_radio_lost = false;
  for (const obs::TraceEvent& e : stack.trace.events()) {
    if (e.kind == obs::TraceKind::kHttpFetchSettled &&
        e.b == static_cast<std::int64_t>(net::FetchStatus::kRadioLost)) {
      saw_radio_lost = true;
    }
  }
  EXPECT_TRUE(saw_radio_lost)
      << "an RLF mid-transfer must settle at least one fetch as radio-lost";
  EXPECT_GE(stack.metrics.failed_resources, 1);
  expect_clean_teardown(stack, "rlf-no-retries");
}

TEST(OutageRecovery, ExhaustedReestablishmentReleasesContextAndStillFinishes) {
  // Every re-establishment attempt fails: after max_reestablish_attempts the
  // UE releases the RRC context and drops to IDLE.  The load must still
  // settle (degraded or via retries through a fresh promotion) with zero
  // residue and an audit-clean recording.
  Stack stack(browser::PipelineMode::kOriginal);
  stack.rrc.set_reestablish_decider([](int) { return false; });
  stack.start();
  stack.hole_at(mid_dch_instant());
  stack.run_to_done();
  EXPECT_GE(stack.rrc.rlf_count(), 1);
  EXPECT_EQ(stack.rrc.reestablish_ok(), 0);
  EXPECT_GE(stack.rrc.reestablish_fail(),
            stack.rrc_config.max_reestablish_attempts);
  expect_clean_teardown(stack, "reestablish-exhausted");
}

}  // namespace
}  // namespace eab
