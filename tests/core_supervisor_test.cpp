// Process-level supervision: in-order streaming merge, real crash isolation
// (workers SIGKILL themselves), retry/backoff/give-up accounting,
// deterministic-error quarantine, durable journal resume (including a torn
// last record and a SIGKILLed orchestrator), and self-chaos kills — all
// asserting the bit-identity contract: the merged payload stream never
// depends on the crash history.
#include "core/supervisor.hpp"

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "util/fileio.hpp"

namespace eab::core {
namespace {

using Merged = std::vector<std::pair<std::size_t, std::string>>;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "sup_" + name + "_" + std::to_string(::getpid());
}

/// The reference payload for shard i: binary-ish and size-varied so framing
/// and length-prefix bugs cannot hide.
std::string payload_for(std::size_t shard) {
  return "shard-" + std::to_string(shard) + std::string("\0#", 2) +
         std::string(shard % 5, 'x');
}

Supervisor::ShardFn plain_work() {
  return [](std::size_t shard) { return payload_for(shard); };
}

Supervisor::MergeFn collect_into(Merged& merged) {
  return [&merged](std::size_t shard, std::string_view payload) {
    merged.emplace_back(shard, std::string(payload));
  };
}

Merged expected_merge(std::size_t shard_count) {
  Merged expected;
  for (std::size_t i = 0; i < shard_count; ++i) {
    expected.emplace_back(i, payload_for(i));
  }
  return expected;
}

/// Fast-failure knobs shared by the tests: real heartbeats, tiny backoff.
SupervisorConfig fast_config() {
  SupervisorConfig config;
  config.workers = 2;
  config.heartbeat_interval = 0.01;
  config.heartbeat_timeout = 5.0;
  config.shard_deadline = 60.0;
  config.backoff_initial = 0.005;
  config.backoff_max = 0.05;
  return config;
}

TEST(SupervisorTest, MergesAllShardsInOrderAcrossWorkerProcesses) {
  SupervisorConfig config = fast_config();
  config.workers = 4;
  Supervisor supervisor(config);
  Merged merged;
  const auto report = supervisor.run(8, plain_work(), collect_into(merged));
  EXPECT_EQ(merged, expected_merge(8));
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.shards, 8u);
  EXPECT_EQ(report.completed, 8u);
  EXPECT_EQ(report.recovered, 0u);
  EXPECT_EQ(report.spawned, 8u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.kills, 0u);
  EXPECT_EQ(report.launch, 0u);
  EXPECT_EQ(report.metrics.value("supervisor.spawned"), 8.0);
  EXPECT_EQ(report.metrics.value("batch.quarantined"), 0.0);
}

TEST(SupervisorTest, ZeroShardsIsANoOp) {
  Supervisor supervisor(fast_config());
  Merged merged;
  const auto report = supervisor.run(0, plain_work(), collect_into(merged));
  EXPECT_TRUE(merged.empty());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.spawned, 0u);
}

TEST(SupervisorTest, RejectsContradictoryConfigs) {
  auto broken = [](auto mutate) {
    SupervisorConfig config;
    mutate(config);
    EXPECT_THROW(Supervisor{config}, std::invalid_argument);
  };
  broken([](SupervisorConfig& c) { c.heartbeat_interval = 0; });
  broken([](SupervisorConfig& c) { c.heartbeat_timeout = 0; });
  broken([](SupervisorConfig& c) { c.heartbeat_timeout = c.heartbeat_interval; });
  broken([](SupervisorConfig& c) { c.shard_deadline = -1; });
  broken([](SupervisorConfig& c) { c.max_attempts = 0; });
  broken([](SupervisorConfig& c) { c.backoff_initial = -0.1; });
  broken([](SupervisorConfig& c) { c.self_chaos_worker_kills = -1; });

  Supervisor supervisor(fast_config());
  EXPECT_THROW(supervisor.run(1, Supervisor::ShardFn{}, {}),
               std::invalid_argument);
}

TEST(SupervisorTest, ResolveWorkersDefaultsToHardwareConcurrency) {
  EXPECT_GE(Supervisor::resolve_workers(0), 1);
  EXPECT_GE(Supervisor::resolve_workers(-3), 1);
  EXPECT_EQ(Supervisor::resolve_workers(5), 5);
}

TEST(SupervisorTest, ThrowingShardIsQuarantinedWithoutRetries) {
  Supervisor supervisor(fast_config());
  Merged merged;
  const auto report = supervisor.run(
      4,
      [](std::size_t shard) -> std::string {
        if (shard == 1) throw std::runtime_error("poisoned shard");
        return payload_for(shard);
      },
      collect_into(merged));

  // The merge skips the failed shard but still runs in order.
  Merged expected = expected_merge(4);
  expected.erase(expected.begin() + 1);
  EXPECT_EQ(merged, expected);

  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].shard, 1u);
  EXPECT_EQ(report.errors[0].what, "poisoned shard");
  EXPECT_TRUE(report.errors[0].deterministic);
  EXPECT_EQ(report.spawned, 4u);  // deterministic failures are not retried
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.completed, 3u);
  // Uniform accounting with the in-process engine.
  EXPECT_EQ(report.metrics.value("batch.quarantined"), 1.0);
  EXPECT_EQ(report.metrics.value("supervisor.shard_retries"), 0.0);
}

TEST(SupervisorTest, SigkilledWorkerIsRetriedAndSweepCompletes) {
  // Real OS-level crash isolation: the shard-2 worker SIGKILLs itself on
  // the first attempt (the marker file crosses the fork boundary), the
  // supervisor respawns it, and the merged stream is exactly the reference.
  const std::string marker = temp_path("crash_once_marker");
  ::unlink(marker.c_str());
  Supervisor supervisor(fast_config());
  Merged merged;
  const auto report = supervisor.run(
      4,
      [&marker](std::size_t shard) {
        std::string ignored;
        if (shard == 2 && !read_file(marker, ignored)) {
          write_file_atomic(marker, "crashed");
          ::raise(SIGKILL);
        }
        return payload_for(shard);
      },
      collect_into(merged));
  ::unlink(marker.c_str());

  EXPECT_EQ(merged, expected_merge(4));
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ(report.retries, 1u);
  EXPECT_EQ(report.spawned, 5u);
  EXPECT_EQ(report.metrics.value("supervisor.shard_retries"), 1.0);
}

TEST(SupervisorTest, GivesUpAfterMaxAttemptsAndSurfacesTheError) {
  SupervisorConfig config = fast_config();
  config.max_attempts = 2;
  Supervisor supervisor(config);
  Merged merged;
  const auto report = supervisor.run(
      2,
      [](std::size_t shard) {
        if (shard == 0) ::raise(SIGKILL);
        return payload_for(shard);
      },
      collect_into(merged));

  EXPECT_EQ(merged, (Merged{{1, payload_for(1)}}));
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].shard, 0u);
  EXPECT_FALSE(report.errors[0].deterministic);
  EXPECT_NE(report.errors[0].what.find("attempts=2"), std::string::npos)
      << report.errors[0].what;
  EXPECT_EQ(report.retries, 1u);  // attempt 2 is the one retry granted
  EXPECT_EQ(report.spawned, 3u);  // 2 for shard 0 + 1 for shard 1
}

TEST(SupervisorTest, JournaledRunResumesWithoutSpawningAnything) {
  const std::string journal = temp_path("resume_journal");
  ::unlink(journal.c_str());
  SupervisorConfig config = fast_config();
  config.checkpoint_path = journal;
  config.fingerprint = "resume-test v1";

  Merged first;
  const auto run1 = Supervisor(config).run(5, plain_work(), collect_into(first));
  EXPECT_TRUE(run1.ok());
  EXPECT_EQ(run1.launch, 0u);
  EXPECT_EQ(run1.spawned, 5u);

  // Relaunch: every shard is served from the journal, bit-identically, and
  // no worker is ever forked (the shard fn aborts the test if it runs).
  Merged second;
  const auto run2 = Supervisor(config).run(
      5,
      [](std::size_t) -> std::string {
        ADD_FAILURE() << "resume must not recompute committed shards";
        return {};
      },
      collect_into(second));
  ::unlink(journal.c_str());

  EXPECT_EQ(second, first);
  EXPECT_TRUE(run2.ok());
  EXPECT_EQ(run2.launch, 1u);
  EXPECT_EQ(run2.recovered, 5u);
  EXPECT_EQ(run2.spawned, 0u);
  EXPECT_EQ(run2.completed, 5u);
  EXPECT_EQ(run2.metrics.value("supervisor.recovered"), 5.0);
}

TEST(SupervisorTest, JournaledDeterministicErrorIsNotRerunOnResume) {
  const std::string journal = temp_path("error_journal");
  ::unlink(journal.c_str());
  SupervisorConfig config = fast_config();
  config.checkpoint_path = journal;

  const auto run1 = Supervisor(config).run(
      3,
      [](std::size_t shard) -> std::string {
        if (shard == 1) throw std::runtime_error("always fails");
        return payload_for(shard);
      },
      {});
  ASSERT_EQ(run1.errors.size(), 1u);

  Merged merged;
  const auto run2 = Supervisor(config).run(
      3,
      [](std::size_t) -> std::string {
        ADD_FAILURE() << "quarantined shard must not be retried on resume";
        return {};
      },
      collect_into(merged));
  ::unlink(journal.c_str());

  EXPECT_EQ(run2.spawned, 0u);
  ASSERT_EQ(run2.errors.size(), 1u);
  EXPECT_EQ(run2.errors[0].shard, 1u);
  EXPECT_EQ(run2.errors[0].what, "always fails");
  EXPECT_TRUE(run2.errors[0].deterministic);
  EXPECT_EQ(merged, (Merged{{0, payload_for(0)}, {2, payload_for(2)}}));
}

TEST(SupervisorTest, ForeignJournalFingerprintIsRejected) {
  const std::string journal = temp_path("foreign_journal");
  ::unlink(journal.c_str());
  SupervisorConfig config = fast_config();
  config.checkpoint_path = journal;
  config.fingerprint = "sweep-A users=1,2,3";
  EXPECT_TRUE(Supervisor(config).run(2, plain_work(), {}).ok());

  config.fingerprint = "sweep-B users=4,5,6";
  EXPECT_THROW(Supervisor(config).run(2, plain_work(), {}),
               std::runtime_error);
  ::unlink(journal.c_str());
}

TEST(SupervisorTest, PreSeededJournalSpawnsOnlyTheMissingShard) {
  // Satellite contract: recovery re-runs EXACTLY the shards the journal
  // does not cover.  Seed results for shards 0 and 2 by hand; only shard 1
  // may spawn a worker.
  const std::string journal = temp_path("seeded_journal");
  ::unlink(journal.c_str());
  {
    CheckpointJournal seeded(journal);
    seeded.append(Supervisor::kRecordShardResult,
                  Supervisor::encode_shard_payload(0, payload_for(0)));
    seeded.append(Supervisor::kRecordShardResult,
                  Supervisor::encode_shard_payload(2, payload_for(2)));
  }
  SupervisorConfig config = fast_config();
  config.checkpoint_path = journal;
  Merged merged;
  const auto report = Supervisor(config).run(
      3,
      [](std::size_t shard) {
        EXPECT_EQ(shard, 1u) << "journal-covered shard recomputed";
        return payload_for(shard);
      },
      collect_into(merged));
  ::unlink(journal.c_str());

  EXPECT_EQ(merged, expected_merge(3));
  EXPECT_EQ(report.recovered, 2u);
  EXPECT_EQ(report.spawned, 1u);
  EXPECT_TRUE(report.ok());
}

TEST(SupervisorTest, TornLastJournalRecordRerunsExactlyThatShard) {
  const std::string journal = temp_path("torn_journal");
  ::unlink(journal.c_str());
  SupervisorConfig config = fast_config();
  config.workers = 1;  // commits land in shard order: the last record is 2
  config.checkpoint_path = journal;
  Merged first;
  ASSERT_TRUE(Supervisor(config).run(3, plain_work(), collect_into(first)).ok());

  std::string bytes;
  ASSERT_TRUE(read_file(journal, bytes));
  ASSERT_EQ(::truncate(journal.c_str(), static_cast<off_t>(bytes.size() - 1)),
            0);

  Merged resumed;
  const auto report = Supervisor(config).run(
      3,
      [](std::size_t shard) {
        EXPECT_EQ(shard, 2u) << "intact shard recomputed after torn tail";
        return payload_for(shard);
      },
      collect_into(resumed));
  ::unlink(journal.c_str());

  EXPECT_EQ(resumed, first);
  EXPECT_EQ(report.recovered, 2u);
  EXPECT_EQ(report.spawned, 1u);
  EXPECT_EQ(report.launch, 1u);
}

TEST(SupervisorTest, SelfChaosWorkerKillsNeverChangeTheMergedStream) {
  Merged reference;
  ASSERT_TRUE(
      Supervisor(fast_config()).run(6, plain_work(), collect_into(reference)).ok());

  SupervisorConfig config = fast_config();
  config.self_chaos_seed = 42;
  config.self_chaos_worker_kills = 4;
  Merged chaotic;
  const auto report = Supervisor(config).run(
      6,
      [](std::size_t shard) {
        // Linger so chaos commit points find live, unsettled victims.
        ::usleep(50 * 1000);
        return payload_for(shard);
      },
      collect_into(chaotic));

  EXPECT_EQ(chaotic, reference);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.completed, 6u);
  EXPECT_LE(report.chaos_kills, 4u);
  EXPECT_EQ(report.kills, report.chaos_kills);
  // A chaos-killed worker whose result frame was already buffered can still
  // settle, so retries is at most — not exactly — the kill count.
  EXPECT_LE(report.retries, report.chaos_kills);
  EXPECT_EQ(report.metrics.value("supervisor.chaos_kills"),
            static_cast<double>(report.chaos_kills));
}

TEST(SupervisorTest, SigkilledOrchestratorResumesByteIdentically) {
  // The acceptance scenario in miniature: a supervised run whose
  // ORCHESTRATOR is SIGKILLed mid-sweep (in a forked child, so the test
  // survives), then relaunched — the resumed merge must be byte-identical
  // to an uninterrupted run.
  const std::string journal = temp_path("orc_kill_journal");
  ::unlink(journal.c_str());

  Merged reference;
  ASSERT_TRUE(Supervisor(fast_config())
                  .run(6, plain_work(), collect_into(reference))
                  .ok());

  SupervisorConfig config = fast_config();
  config.workers = 1;
  config.checkpoint_path = journal;
  config.fingerprint = "orc-kill-test";
  config.self_chaos_seed = 99;
  config.self_chaos_kill_orchestrator = true;

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    Supervisor(config).run(6, plain_work(), {});
    _exit(0);  // only reached if chaos never fired — the parent checks
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "orchestrator was not chaos-killed";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Relaunch without chaos: resume from whatever was durably committed.
  config.self_chaos_seed = 0;
  config.self_chaos_kill_orchestrator = false;
  Merged resumed;
  const auto report =
      Supervisor(config).run(6, plain_work(), collect_into(resumed));
  ::unlink(journal.c_str());

  EXPECT_EQ(resumed, reference);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.launch, 1u);
  EXPECT_GE(report.recovered, 1u);  // the chaos point guarantees >= 1 commit
  EXPECT_EQ(report.recovered + report.spawned, 6u);
}

TEST(SupervisorTest, ShardPayloadCodecRoundTrips) {
  const std::string bytes = std::string("bin\0ary", 7);
  const std::string encoded = Supervisor::encode_shard_payload(17, bytes);
  std::size_t shard = 0;
  std::string decoded;
  Supervisor::decode_shard_payload(encoded, shard, decoded);
  EXPECT_EQ(shard, 17u);
  EXPECT_EQ(decoded, bytes);
  EXPECT_THROW(
      {
        std::size_t s;
        std::string b;
        Supervisor::decode_shard_payload(encoded.substr(0, 10), s, b);
      },
      std::runtime_error);
}

}  // namespace
}  // namespace eab::core
