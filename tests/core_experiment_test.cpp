#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace eab::core {
namespace {

TEST(Experiment, StackConfigForModeSetsForcedRelease) {
  const auto orig = StackConfig::for_mode(browser::PipelineMode::kOriginal);
  EXPECT_FALSE(orig.force_idle_at_tx);
  const auto ea = StackConfig::for_mode(browser::PipelineMode::kEnergyAware);
  EXPECT_TRUE(ea.force_idle_at_tx);
  EXPECT_EQ(ea.pipeline.mode, browser::PipelineMode::kEnergyAware);
}

TEST(Experiment, SingleLoadProducesConsistentMeasurements) {
  const auto result = run_single_load(
      corpus::m_cnn_spec(),
      StackConfig::for_mode(browser::PipelineMode::kOriginal));
  EXPECT_GT(result.metrics.transmission_time(), 0.0);
  EXPECT_GE(result.metrics.total_time(), result.metrics.transmission_time());
  EXPECT_GT(result.energy.load_j, 0.0);
  EXPECT_GT(result.energy.with_reading_j, result.energy.load_j);
  EXPECT_GT(result.dch_time, 0.0);
  EXPECT_EQ(result.idle_promotions, 1);  // cold start
  EXPECT_EQ(result.forced_releases, 0);  // original never forces
  EXPECT_GT(result.bytes_fetched, corpus::m_cnn_spec().html_bytes);
  EXPECT_FALSE(result.dom_signature.empty());
}

TEST(Experiment, EnergyAwareForcesExactlyOneRelease) {
  const auto result = run_single_load(
      corpus::m_cnn_spec(),
      StackConfig::for_mode(browser::PipelineMode::kEnergyAware));
  EXPECT_EQ(result.forced_releases, 1);
}

TEST(Experiment, EnergyIntegralMatchesPowerTimeline) {
  const auto result = run_single_load(
      corpus::m_cnn_spec(),
      StackConfig::for_mode(browser::PipelineMode::kOriginal), 20.0);
  EXPECT_NEAR(result.energy.load_j,
              result.total_power.energy(0, result.metrics.final_display), 1e-9);
  EXPECT_NEAR(
      result.energy.with_reading_j,
      result.total_power.energy(0, result.metrics.final_display + 20.0), 1e-9);
}

TEST(Experiment, DeterministicForSeed) {
  const auto config = StackConfig::for_mode(browser::PipelineMode::kOriginal);
  const auto a = run_single_load(corpus::m_cnn_spec(), config, 20.0, 5);
  const auto b = run_single_load(corpus::m_cnn_spec(), config, 20.0, 5);
  EXPECT_DOUBLE_EQ(a.energy.load_j, b.energy.load_j);
  EXPECT_DOUBLE_EQ(a.metrics.final_display, b.metrics.final_display);
  EXPECT_EQ(a.dom_signature, b.dom_signature);
}

TEST(Experiment, HeadlineResultHolds) {
  // The paper's core claim on its featured page: the energy-aware approach
  // cuts transmission time and total energy substantially (Figs 8-10).
  const auto spec = corpus::espn_sports_spec();
  const auto orig = run_single_load(
      spec, StackConfig::for_mode(browser::PipelineMode::kOriginal));
  const auto ea = run_single_load(
      spec, StackConfig::for_mode(browser::PipelineMode::kEnergyAware));

  EXPECT_EQ(orig.dom_signature, ea.dom_signature);
  EXPECT_EQ(orig.bytes_fetched, ea.bytes_fetched);
  // Transmission time saving in the paper's band (27-35 % for full pages;
  // allow a generous envelope so the test pins the direction, not the digit).
  const double tx_saving =
      1.0 - ea.metrics.transmission_time() / orig.metrics.transmission_time();
  EXPECT_GT(tx_saving, 0.15);
  EXPECT_LT(tx_saving, 0.50);
  // Energy saving with 20 s reading: paper reports >30 %.
  const double energy_saving = 1.0 - ea.energy.with_reading_j / orig.energy.with_reading_j;
  EXPECT_GT(energy_saving, 0.25);
  // DCH residency shrinks — that is the capacity mechanism.
  EXPECT_LT(ea.dch_time, orig.dch_time);
}

TEST(Experiment, BulkDownloadFasterThanBrowserLoad) {
  const auto spec = corpus::espn_sports_spec();
  const auto config = StackConfig::for_mode(browser::PipelineMode::kOriginal);
  const auto load = run_single_load(spec, config);
  const auto bulk = run_bulk_download(load.bytes_fetched, config);
  // Fig 4: the socket groups all transmissions; the browser spreads them.
  EXPECT_LT(bulk.duration(), load.metrics.transmission_time() * 0.7);
  EXPECT_GT(bulk.energy, 0.0);
}

TEST(Experiment, ReadingWindowEnergyDependsOnRadioPolicy) {
  // During 20 s of reading the original browser's radio walks the timer
  // chain (FACH power for much of it), while the energy-aware stack already
  // released — the per-window energy gap is why Fig 10 shows 30 %+ savings.
  const auto spec = corpus::m_cnn_spec();
  const auto orig = run_single_load(
      spec, StackConfig::for_mode(browser::PipelineMode::kOriginal));
  const auto ea = run_single_load(
      spec, StackConfig::for_mode(browser::PipelineMode::kEnergyAware));
  const Joules orig_reading = orig.energy.with_reading_j - orig.energy.load_j;
  const Joules ea_reading = ea.energy.with_reading_j - ea.energy.load_j;
  EXPECT_GT(orig_reading, ea_reading * 2.0);
}

}  // namespace
}  // namespace eab::core
