#include "core/session.hpp"

#include <gtest/gtest.h>

namespace eab::core {
namespace {

struct SessionFixture : ::testing::Test {
  corpus::PageSpec mobile = corpus::m_cnn_spec();
  corpus::PageSpec full = corpus::espn_sports_spec();

  std::vector<PageVisit> visits() {
    return {{&mobile, 25.0}, {&full, 40.0}, {&mobile, 8.0}, {&mobile, 3.0}};
  }

  SessionResult run(SessionPolicy policy, Seconds threshold = 9.0,
                    const gbrt::GbrtModel* model = nullptr) {
    SessionConfig config;
    config.policy = policy;
    config.threshold = threshold;
    config.predictor.model = model;
    return run_session(visits(), config, 1);
  }
};

TEST_F(SessionFixture, BaselineRunsAllPages) {
  const SessionResult result = run(SessionPolicy::kBaseline);
  EXPECT_EQ(result.pages, 4);
  EXPECT_EQ(result.switches_to_idle, 0);
  EXPECT_EQ(result.page_load_times.size(), 4u);
  EXPECT_GT(result.energy.with_reading_j, 0.0);
  EXPECT_GT(result.energy.window_s, 25 + 40 + 8 + 3);
}

TEST_F(SessionFixture, AlwaysOffSwitchesEveryPage) {
  const SessionResult result = run(SessionPolicy::kOriginalAlwaysOff);
  EXPECT_EQ(result.switches_to_idle, 4);
}

TEST_F(SessionFixture, AccurateSwitchesOnlyLongReads) {
  // Threshold 9 s: pages read for 25 s and 40 s qualify; 8 s and 3 s do not.
  const SessionResult result = run(SessionPolicy::kAccurate, 9.0);
  EXPECT_EQ(result.switches_to_idle, 2);
  // Threshold 20 s: only 25 s and 40 s still qualify.
  EXPECT_EQ(run(SessionPolicy::kAccurate, 20.0).switches_to_idle, 2);
  // Threshold 30 s: only the 40 s read.
  EXPECT_EQ(run(SessionPolicy::kAccurate, 30.0).switches_to_idle, 1);
}

TEST_F(SessionFixture, PredictUsesModel) {
  // A constant model predicting 100 s switches on every page read past
  // alpha; one predicting 1 s never switches.
  const auto always = gbrt::GbrtModel::assemble(std::log(100.0), 1.0, {});
  const auto never = gbrt::GbrtModel::assemble(std::log(1.0), 1.0, {});
  // Reads above alpha = 2 s: 25, 40, 8 (3 s also above). All four predict.
  EXPECT_EQ(run(SessionPolicy::kPredict, 9.0, &always).switches_to_idle, 4);
  EXPECT_EQ(run(SessionPolicy::kPredict, 9.0, &never).switches_to_idle, 0);
}

TEST_F(SessionFixture, PredictRequiresModel) {
  SessionConfig config;
  config.policy = SessionPolicy::kPredict;
  EXPECT_THROW(run_session(visits(), config, 1), std::invalid_argument);
}

TEST_F(SessionFixture, NullSpecRejected) {
  SessionConfig config;
  std::vector<PageVisit> bad = {{nullptr, 5.0}};
  EXPECT_THROW(run_session(bad, config, 1), std::invalid_argument);
}

TEST_F(SessionFixture, EnergyAwarePoliciesUseLessEnergyThanBaseline) {
  const SessionResult baseline = run(SessionPolicy::kBaseline);
  const SessionResult ea_off = run(SessionPolicy::kEnergyAwareAlwaysOff);
  const SessionResult accurate = run(SessionPolicy::kAccurate, 9.0);
  EXPECT_LT(ea_off.energy.with_reading_j, baseline.energy.with_reading_j);
  EXPECT_LT(accurate.energy.with_reading_j, baseline.energy.with_reading_j);
}

TEST_F(SessionFixture, ReorganizedPipelineLoadsFaster) {
  const SessionResult baseline = run(SessionPolicy::kBaseline);
  const SessionResult accurate = run(SessionPolicy::kAccurate, 20.0);
  EXPECT_LT(accurate.total_load_delay, baseline.total_load_delay);
}

TEST_F(SessionFixture, EagerSwitchingCostsDelayOnQuickFollowups) {
  // Visits with short reads: always-off pays the IDLE->DCH promotion on
  // every next click, the timer-driven baseline does not.
  std::vector<PageVisit> quick = {{&mobile, 3.0}, {&mobile, 3.0},
                                  {&mobile, 3.0}, {&mobile, 3.0}};
  SessionConfig baseline_config;
  baseline_config.policy = SessionPolicy::kBaseline;
  SessionConfig eager_config;
  eager_config.policy = SessionPolicy::kOriginalAlwaysOff;
  const SessionResult baseline = run_session(quick, baseline_config, 1);
  const SessionResult eager = run_session(quick, eager_config, 1);
  EXPECT_GT(eager.total_load_delay, baseline.total_load_delay + 2.0);
}

TEST_F(SessionFixture, DeterministicForSeed) {
  const SessionResult a = run(SessionPolicy::kAccurate, 9.0);
  const SessionResult b = run(SessionPolicy::kAccurate, 9.0);
  EXPECT_DOUBLE_EQ(a.energy.with_reading_j, b.energy.with_reading_j);
  EXPECT_DOUBLE_EQ(a.total_load_delay, b.total_load_delay);
}

TEST_F(SessionFixture, EmptySessionIsHarmless) {
  SessionConfig config;
  const SessionResult result = run_session({}, config, 1);
  EXPECT_EQ(result.pages, 0);
  EXPECT_DOUBLE_EQ(result.energy.with_reading_j, 0.0);
}

TEST_F(SessionFixture, Algorithm2PowerDrivenSwitchesAboveTp) {
  // A constant predictor of 12 s: above Tp=9 but below Td=20 — the
  // power-driven mode switches, the delay-driven mode does not.
  const auto model = gbrt::GbrtModel::assemble(std::log(12.0), 1.0, {});
  SessionConfig config;
  config.policy = SessionPolicy::kAlgorithm2;
  config.predictor.model = &model;
  config.controller.mode = DecisionMode::kPowerDriven;
  const auto power_driven = run_session(visits(), config, 1);
  // Reads above alpha: all four -> four predictions, all 12 s > Tp.
  EXPECT_EQ(power_driven.switches_to_idle, 4);

  config.controller.mode = DecisionMode::kDelayDriven;
  const auto delay_driven = run_session(visits(), config, 1);
  EXPECT_EQ(delay_driven.switches_to_idle, 0);
}

TEST_F(SessionFixture, Algorithm2RespectsTdInBothModes) {
  const auto model = gbrt::GbrtModel::assemble(std::log(25.0), 1.0, {});
  SessionConfig config;
  config.policy = SessionPolicy::kAlgorithm2;
  config.predictor.model = &model;
  config.controller.mode = DecisionMode::kDelayDriven;
  // 25 s > Td = 20 s: even the delay-driven mode switches.
  EXPECT_EQ(run_session(visits(), config, 1).switches_to_idle, 4);
}

TEST_F(SessionFixture, Algorithm2RequiresModel) {
  SessionConfig config;
  config.policy = SessionPolicy::kAlgorithm2;
  EXPECT_THROW(run_session(visits(), config, 1), std::invalid_argument);
}

TEST(SessionPolicyNames, AllDistinct) {
  EXPECT_STREQ(to_string(SessionPolicy::kBaseline), "Original");
  EXPECT_STREQ(to_string(SessionPolicy::kAccurate), "Accurate");
  EXPECT_STREQ(to_string(SessionPolicy::kPredict), "Predict");
  EXPECT_STREQ(to_string(SessionPolicy::kAlgorithm2), "Algorithm-2");
}

}  // namespace
}  // namespace eab::core
