#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace eab::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimesRunInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  Seconds fired_at = -1;
  sim.schedule_at(10.0, [&] {
    sim.schedule_in(5.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_in(1.0, chain);
  };
  sim.schedule_in(1.0, chain);
  const std::size_t ran = sim.run();
  EXPECT_EQ(ran, 100u);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, EmptyActionThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, Simulator::Action{}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotent) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(EventId{}));
}

TEST(Simulator, CancelAfterFiringIsNoOp) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, PendingTracksLifecycle) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.pending(id));
  sim.run();
  EXPECT_FALSE(sim.pending(id));
  EXPECT_FALSE(sim.pending(EventId{}));
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_at(1.0, [&] { fired.push_back(1.0); });
  sim.schedule_at(5.0, [&] { fired.push_back(5.0); });
  sim.schedule_at(9.0, [&] { fired.push_back(9.0); });
  sim.run_until(5.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 5.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run_until(20.0);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(sim.now(), 20.0);
}

TEST(Simulator, RunUntilWithEmptyQueueAdvancesClock) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulator, StepRunsExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  const EventId id = sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_count(), 1u);
}

TEST(Simulator, CancelledEventDoesNotAdvanceClock) {
  Simulator sim;
  const EventId id = sim.schedule_at(100.0, [] {});
  sim.schedule_at(1.0, [] {});
  sim.cancel(id);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(Simulator, CancelAfterFireWithOtherEventsPending) {
  Simulator sim;
  int fired = 0;
  const EventId first = sim.schedule_at(1.0, [&] { ++fired; });
  const EventId second = sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());  // fires `first`
  EXPECT_FALSE(sim.cancel(first));
  EXPECT_TRUE(sim.pending(second));
  EXPECT_EQ(sim.pending_count(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelTwiceAcrossRunBoundary) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  sim.run();  // the tombstone surfaces and is discarded here
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.pending(id));
}

TEST(Simulator, RescheduleStormKeepsOneTimerLive) {
  // RRC-style inactivity timer churn: every "packet" cancels the running
  // timer and schedules a fresh one.  Only the last survivor may fire.
  Simulator sim;
  int fires = 0;
  Seconds fired_at = -1;
  EventId timer;
  for (int i = 0; i < 10000; ++i) {
    sim.cancel(timer);
    timer = sim.schedule_at(static_cast<Seconds>(i) + 4.0, [&] {
      ++fires;
      fired_at = sim.now();
    });
    EXPECT_EQ(sim.pending_count(), 1u);
  }
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_DOUBLE_EQ(fired_at, 9999.0 + 4.0);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(Simulator, PendingCountInvariantUnderMixedLifecycles) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.schedule_at(static_cast<Seconds>(i + 1), [] {}));
  }
  EXPECT_EQ(sim.pending_count(), 100u);
  // Cancel every third event; scheduled - cancelled must remain pending.
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    EXPECT_TRUE(sim.cancel(ids[i]));
    ++cancelled;
    EXPECT_EQ(sim.pending_count(), 100u - cancelled);
  }
  // Fire the rest one at a time; each step drops exactly one pending event.
  std::size_t remaining = 100u - cancelled;
  while (sim.step()) {
    --remaining;
    EXPECT_EQ(sim.pending_count(), remaining);
  }
  EXPECT_EQ(remaining, 0u);
  EXPECT_EQ(sim.fired_count(), 100u - cancelled);
}

TEST(Simulator, CancelInsideActionSuppressesSameTimePeer) {
  Simulator sim;
  bool peer_fired = false;
  EventId peer;
  sim.schedule_at(1.0, [&] { sim.cancel(peer); });
  peer = sim.schedule_at(1.0, [&] { peer_fired = true; });
  sim.run();
  EXPECT_FALSE(peer_fired);
  EXPECT_EQ(sim.fired_count(), 1u);
}

TEST(Simulator, FiredCountAccumulatesAcrossRuns) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.run_until(1.0);
  EXPECT_EQ(sim.fired_count(), 1u);
  sim.schedule_at(3.0, [] {});
  sim.run();
  EXPECT_EQ(sim.fired_count(), 3u);
}

TEST(Simulator, RunUntilSkipsLeadingTombstones) {
  Simulator sim;
  // Earliest events all cancelled: run_until must discard their tombstones
  // and still stop before later-than-until work.
  for (int i = 0; i < 10; ++i) {
    sim.cancel(sim.schedule_at(1.0, [] {}));
  }
  bool fired_5 = false;
  bool fired_9 = false;
  sim.schedule_at(5.0, [&] { fired_5 = true; });
  sim.schedule_at(9.0, [&] { fired_9 = true; });
  EXPECT_EQ(sim.run_until(6.0), 1u);
  EXPECT_TRUE(fired_5);
  EXPECT_FALSE(fired_9);
  EXPECT_DOUBLE_EQ(sim.now(), 6.0);
}

TEST(Simulator, EventBudgetThrowsWithPendingDump) {
  Simulator sim;
  sim.set_event_budget(100);
  // A self-feeding event loop: the wedged-simulation bug class the budget
  // exists to catch.
  std::function<void()> feed = [&] { sim.schedule_in(0.5, feed); };
  sim.schedule_in(0.5, feed);
  sim.schedule_at(1e9, [] {});  // an innocent bystander for the dump
  try {
    sim.run();
    FAIL() << "unbounded loop should exhaust the budget";
  } catch (const BudgetExhaustedError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("event budget exhausted"), std::string::npos) << what;
    EXPECT_NE(what.find("pending heap"), std::string::npos) << what;
    EXPECT_NE(what.find("t="), std::string::npos)
        << "the dump lists pending event timestamps: " << what;
  }
  EXPECT_EQ(sim.fired_count(), 100u);
}

TEST(Simulator, DefaultBudgetIsEffectivelyUnlimited) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    sim.schedule_at(static_cast<Seconds>(i), [&fired] { ++fired; });
  }
  EXPECT_NO_THROW(sim.run());
  EXPECT_EQ(fired, 1000);
}

TEST(Simulator, BoundedRunReportsBudgetExhaustion) {
  Simulator sim;
  std::function<void()> feed = [&] { sim.schedule_in(1.0, feed); };
  sim.schedule_in(1.0, feed);
  const RunResult partial = sim.run(50);
  EXPECT_EQ(partial.status, RunStatus::kBudgetExhausted);
  EXPECT_FALSE(partial.drained());
  EXPECT_EQ(partial.events, 50u);

  // A drainable heap under the cap reports kDrained.
  Simulator finite;
  finite.schedule_at(1.0, [] {});
  finite.schedule_at(2.0, [] {});
  const RunResult drained = finite.run(50);
  EXPECT_EQ(drained.status, RunStatus::kDrained);
  EXPECT_TRUE(drained.drained());
  EXPECT_EQ(drained.events, 2u);
}

TEST(Simulator, PendingDumpListsLiveEventsInOrder) {
  Simulator sim;
  sim.schedule_at(3.0, [] {});
  sim.schedule_at(1.0, [] {});
  sim.cancel(sim.schedule_at(2.0, [] {}));  // tombstones never appear
  const std::string dump = sim.pending_dump();
  EXPECT_NE(dump.find("2 live events"), std::string::npos) << dump;
  const auto pos1 = dump.find("t=1");
  const auto pos3 = dump.find("t=3");
  EXPECT_NE(pos1, std::string::npos) << dump;
  EXPECT_NE(pos3, std::string::npos) << dump;
  EXPECT_LT(pos1, pos3) << "entries sorted by firing order: " << dump;
  EXPECT_EQ(dump.find("t=2"), std::string::npos)
      << "cancelled event leaked into the dump: " << dump;
}

TEST(Simulator, RescheduleStormHoldsConstantMemory) {
  // The RRC inactivity-timer pattern at scale: one live timer, endlessly
  // cancelled and re-armed.  Tombstone compaction must keep the heap bounded
  // instead of letting 100k dead nodes pile up behind the live one.
  Simulator sim;
  constexpr int kIterations = 100000;
  EventId timer = sim.schedule_in(1000.0, [] {});
  for (int i = 1; i < kIterations; ++i) {
    sim.cancel(timer);
    timer = sim.schedule_in(1000.0 + i * 1e-6, [] {});
  }
  EXPECT_EQ(sim.pending_count(), 1u);
  EXPECT_LT(sim.peak_heap_size(), 4096u)
      << "compaction failed to reclaim tombstones";
  sim.run();
  EXPECT_EQ(sim.fired_count(), 1u);
  EXPECT_EQ(sim.cancelled_count(), kIterations - 1u);
  // Compacted and surfaced tombstones both count; over a drained run the
  // total is exactly the number of cancellations.
  EXPECT_EQ(sim.tombstones_popped(), kIterations - 1u);
}

TEST(Simulator, ScheduleErrorsIncludeOffendingValues) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  ASSERT_DOUBLE_EQ(sim.now(), 10.0);
  try {
    sim.schedule_at(-5.0, [] {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("t=-5"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("now()=10"), std::string::npos)
        << e.what();
  }
  try {
    sim.schedule_in(-2.5, [] {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("delay=-2.5"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("now()=10"), std::string::npos)
        << e.what();
  }
}

TEST(Simulator, OversizedCapturesFireCorrectlyAndRecycleBlocks) {
  // A capture far past the inline buffer routes through the overflow pool;
  // the payload must survive intact and the block must be reused.
  Simulator sim;
  std::array<std::uint8_t, 200> payload{};
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  std::uint64_t sum = 0;
  sim.schedule_at(1.0, [payload, &sum] {
    for (std::uint8_t b : payload) sum += b;
  });
  sim.run();
  std::uint64_t expected = 0;
  for (std::uint8_t b : payload) expected += b;
  EXPECT_EQ(sum, expected);
  const std::size_t free_after_first = sim.overflow_free_blocks();
  EXPECT_GE(free_after_first, 1u);

  // Same size class again: the freed block is handed back out, not leaked.
  sim.schedule_at(2.0, [payload, &sum] { sum += payload[0]; });
  EXPECT_EQ(sim.overflow_free_blocks(), free_after_first - 1);
  sim.run();
  EXPECT_EQ(sim.overflow_free_blocks(), free_after_first);
}

TEST(Simulator, ShardedFireOrderIsGlobal) {
  // Events scattered across 4 queues still fire strictly by
  // (time, scheduling order) — placement is invisible.
  Simulator sim(4);
  ASSERT_EQ(sim.shard_count(), 4);
  std::vector<int> order;
  for (int i = 0; i < 32; ++i) {
    sim.set_schedule_shard(i % 4);
    const Seconds at = static_cast<Seconds>((i * 13) % 8);  // many ties
    sim.schedule_at(at, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 32u);
  Simulator single;
  std::vector<int> expected;
  for (int i = 0; i < 32; ++i) {
    const Seconds at = static_cast<Seconds>((i * 13) % 8);
    single.schedule_at(at, [&expected, i] { expected.push_back(i); });
  }
  single.run();
  EXPECT_EQ(order, expected);
}

TEST(Simulator, ShardedCancelAndPendingDumpSpanShards) {
  Simulator sim(3);
  sim.set_schedule_shard(0);
  sim.schedule_at(1.0, [] {});
  sim.set_schedule_shard(1);
  const EventId victim = sim.schedule_at(2.0, [] {});
  sim.set_schedule_shard(2);
  sim.schedule_at(3.0, [] {});
  // Cancel is routed by the handle, not the current schedule shard.
  sim.set_schedule_shard(0);
  EXPECT_TRUE(sim.cancel(victim));
  EXPECT_EQ(sim.pending_count(), 2u);
  const std::string dump = sim.pending_dump();
  EXPECT_NE(dump.find("2 live events"), std::string::npos) << dump;
  EXPECT_NE(dump.find("t=1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("t=3"), std::string::npos) << dump;
  EXPECT_EQ(dump.find("t=2"), std::string::npos) << dump;
}

TEST(Simulator, ChildrenInheritTheFiringEventsShard) {
  Simulator sim(4);
  sim.set_schedule_shard(2);
  int child_shard = -1;
  sim.schedule_at(1.0, [&] {
    // During execution the schedule shard is the firing event's shard, so
    // children land beside their parent without explicit routing.
    EXPECT_EQ(sim.schedule_shard(), 2);
    sim.schedule_in(1.0, [&] { child_shard = sim.schedule_shard(); });
  });
  sim.set_schedule_shard(0);  // the caller's setting is restored after fires
  sim.run();
  EXPECT_EQ(child_shard, 2);
  EXPECT_EQ(sim.schedule_shard(), 0);
}

TEST(Simulator, ShardConfigurationIsValidatedAndPristineOnly) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  EXPECT_THROW(sim.set_shard_count(2), std::logic_error);
  EXPECT_THROW(Simulator(0), std::invalid_argument);
  EXPECT_THROW(Simulator(257), std::invalid_argument);
  Simulator fresh;
  fresh.set_shard_count(8);
  EXPECT_EQ(fresh.shard_count(), 8);
  EXPECT_THROW(fresh.set_schedule_shard(8), std::out_of_range);
  EXPECT_THROW(fresh.set_schedule_shard(-1), std::out_of_range);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  Seconds last = -1;
  bool monotone = true;
  for (int i = 0; i < 5000; ++i) {
    const Seconds at = static_cast<Seconds>((i * 7919) % 1000);
    sim.schedule_at(at, [&, at] {
      if (at < last) monotone = false;
      last = at;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace eab::sim
