#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace eab::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimesRunInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  Seconds fired_at = -1;
  sim.schedule_at(10.0, [&] {
    sim.schedule_in(5.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_in(1.0, chain);
  };
  sim.schedule_in(1.0, chain);
  const std::size_t ran = sim.run();
  EXPECT_EQ(ran, 100u);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, EmptyActionThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, Simulator::Action{}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotent) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(EventId{}));
}

TEST(Simulator, CancelAfterFiringIsNoOp) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, PendingTracksLifecycle) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.pending(id));
  sim.run();
  EXPECT_FALSE(sim.pending(id));
  EXPECT_FALSE(sim.pending(EventId{}));
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_at(1.0, [&] { fired.push_back(1.0); });
  sim.schedule_at(5.0, [&] { fired.push_back(5.0); });
  sim.schedule_at(9.0, [&] { fired.push_back(9.0); });
  sim.run_until(5.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 5.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run_until(20.0);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(sim.now(), 20.0);
}

TEST(Simulator, RunUntilWithEmptyQueueAdvancesClock) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulator, StepRunsExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  const EventId id = sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_count(), 1u);
}

TEST(Simulator, CancelledEventDoesNotAdvanceClock) {
  Simulator sim;
  const EventId id = sim.schedule_at(100.0, [] {});
  sim.schedule_at(1.0, [] {});
  sim.cancel(id);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  Seconds last = -1;
  bool monotone = true;
  for (int i = 0; i < 5000; ++i) {
    const Seconds at = static_cast<Seconds>((i * 7919) % 1000);
    sim.schedule_at(at, [&, at] {
      if (at < last) monotone = false;
      last = at;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace eab::sim
