#include "browser/layout.hpp"

#include <gtest/gtest.h>

#include "browser/text_render.hpp"
#include "web/html_parser.hpp"

namespace eab::browser {
namespace {

TEST(Layout, TextWrapsAtViewportWidth) {
  Viewport viewport;  // 320 px, 7 px/char -> 45 chars per line
  const std::string long_text(450, 'x');  // 10 lines
  const auto doc = web::parse_html("<p>" + long_text + "</p>");
  const PageGeometry geometry = estimate_geometry(doc.dom.root(), viewport);
  EXPECT_EQ(geometry.text_nodes, 1u);
  EXPECT_GE(geometry.height_px, 10 * viewport.line_height_px);
}

TEST(Layout, ImagesUseDeclaredDimensions) {
  Viewport viewport;
  const auto doc =
      web::parse_html("<img src='a' width='200' height='300'>");
  const PageGeometry geometry = estimate_geometry(doc.dom.root(), viewport);
  EXPECT_EQ(geometry.image_nodes, 1u);
  EXPECT_GE(geometry.height_px, 300);
}

TEST(Layout, ImagesWithoutDimensionsUseDefaults) {
  Viewport viewport;
  const auto doc = web::parse_html("<img src='a'>");
  const PageGeometry geometry = estimate_geometry(doc.dom.root(), viewport);
  EXPECT_GE(geometry.height_px, viewport.default_image_height_px);
}

TEST(Layout, ScriptAndHeadContentNotMeasured) {
  Viewport viewport;
  const auto with_script = web::parse_html(
      "<script>var t = 'aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa';</script><p>hi</p>");
  const auto without = web::parse_html("<p>hi</p>");
  const PageGeometry a = estimate_geometry(with_script.dom.root(), viewport);
  const PageGeometry b = estimate_geometry(without.dom.root(), viewport);
  EXPECT_EQ(a.height_px, b.height_px);
  EXPECT_EQ(a.text_nodes, b.text_nodes);
}

TEST(Layout, TallerPageForMoreContent) {
  Viewport viewport;
  std::string small = "<p>word</p>";
  std::string big;
  for (int i = 0; i < 50; ++i) big += "<p>some words that wrap a little</p>";
  const auto doc_small = web::parse_html(small);
  const auto doc_big = web::parse_html(big);
  EXPECT_GT(estimate_geometry(doc_big.dom.root(), viewport).height_px,
            estimate_geometry(doc_small.dom.root(), viewport).height_px * 10);
}

TEST(Layout, WidthAtLeastViewport) {
  Viewport viewport;
  const auto doc = web::parse_html("<p>x</p>");
  EXPECT_GE(estimate_geometry(doc.dom.root(), viewport).width_px,
            viewport.width_px);
}

TEST(Layout, WideImageStretchesWidth) {
  Viewport viewport;
  const auto doc = web::parse_html("<img src='a' width='900' height='10'>");
  EXPECT_GE(estimate_geometry(doc.dom.root(), viewport).width_px, 900);
}

TEST(TextRender, WrapsAndJoinsWords) {
  Viewport viewport;
  const auto doc = web::parse_html("<p>alpha beta gamma</p>");
  const std::string out =
      render_text(doc.dom.root(), viewport, RenderStyle::kFull);
  EXPECT_NE(out.find("alpha beta gamma"), std::string::npos);
}

TEST(TextRender, FullStyleShowsImageBoxes) {
  Viewport viewport;
  const auto doc = web::parse_html("<img src='a' width='10' height='20'>");
  const std::string full =
      render_text(doc.dom.root(), viewport, RenderStyle::kFull);
  EXPECT_NE(full.find("[image 10x20]"), std::string::npos);
}

TEST(TextRender, SimplifiedStyleSkipsImages) {
  Viewport viewport;
  const auto doc =
      web::parse_html("<p>text</p><img src='a' width='10' height='20'>");
  const std::string simplified =
      render_text(doc.dom.root(), viewport, RenderStyle::kSimplifiedText);
  EXPECT_EQ(simplified.find("[image"), std::string::npos);
  EXPECT_NE(simplified.find("text"), std::string::npos);
}

TEST(TextRender, ScriptsNotRendered) {
  Viewport viewport;
  const auto doc = web::parse_html("<script>var visible = 'no';</script>");
  const std::string out =
      render_text(doc.dom.root(), viewport, RenderStyle::kFull);
  EXPECT_EQ(out.find("visible"), std::string::npos);
}

TEST(TextRender, MaxLinesTruncates) {
  Viewport viewport;
  std::string html;
  for (int i = 0; i < 40; ++i) html += "<p>line " + std::to_string(i) + "</p>";
  const auto doc = web::parse_html(html);
  const std::string out =
      render_text(doc.dom.root(), viewport, RenderStyle::kFull, 5);
  EXPECT_LE(std::count(out.begin(), out.end(), '\n'), 6);
}

TEST(TextRender, LongWordsDoNotInfiniteLoop) {
  Viewport viewport;
  const auto doc = web::parse_html("<p>" + std::string(500, 'w') + "</p>");
  EXPECT_NO_THROW(render_text(doc.dom.root(), viewport, RenderStyle::kFull));
}

}  // namespace
}  // namespace eab::browser
