// Tests for the post-reproduction extensions: Huber/early-stopping GBRT,
// Weibull dwell analysis, capacity confidence intervals, DOM selectors.
#include <gtest/gtest.h>

#include <cmath>

#include "capacity/mgn.hpp"
#include "gbrt/model.hpp"
#include "trace/reading_model.hpp"
#include "util/rng.hpp"
#include "web/css.hpp"
#include "web/html_parser.hpp"

namespace eab {
namespace {

// --- GBRT: Huber loss ------------------------------------------------------

gbrt::Dataset outlier_data(std::uint64_t seed, int n) {
  Rng rng(seed);
  gbrt::Dataset data(1);
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(-2, 2);
    double y = 3.0 * x + rng.normal(0, 0.1);
    if (rng.chance(0.05)) y += 80.0;  // gross positive outliers
    data.add({x}, y);
  }
  return data;
}

TEST(GbrtHuber, MoreRobustToOutliersThanSquaredLoss) {
  const gbrt::Dataset train = outlier_data(1, 1500);
  // Clean evaluation grid: y = 3x exactly.
  gbrt::Dataset clean(1);
  for (double x = -2; x <= 2; x += 0.05) clean.add({x}, 3.0 * x);

  gbrt::GbrtParams params;
  params.trees = 150;
  params.shrinkage = 0.1;
  params.loss = gbrt::Loss::kSquared;
  const auto squared = gbrt::train_gbrt(train, params, 1);
  params.loss = gbrt::Loss::kHuber;
  const auto huber = gbrt::train_gbrt(train, params, 1);

  EXPECT_LT(gbrt::mse(huber, clean), gbrt::mse(squared, clean) * 0.8);
}

TEST(GbrtHuber, ValidatesQuantile) {
  const gbrt::Dataset data = outlier_data(2, 50);
  gbrt::GbrtParams params;
  params.huber_quantile = 0.0;
  EXPECT_THROW(gbrt::train_gbrt(data, params, 1), std::invalid_argument);
  params.huber_quantile = 1.5;
  EXPECT_THROW(gbrt::train_gbrt(data, params, 1), std::invalid_argument);
}

// --- GBRT: early stopping ----------------------------------------------------

TEST(GbrtEarlyStopping, StopsWhenValidationPlateausAndTruncates) {
  Rng rng(3);
  gbrt::Dataset train(1);
  gbrt::Dataset valid(1);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform(-3, 3);
    const double y = std::sin(x) + rng.normal(0, 0.4);
    (i % 4 == 0 ? valid : train).add({x}, y);
  }
  gbrt::GbrtParams params;
  params.trees = 500;
  params.shrinkage = 0.3;  // aggressive: overfits quickly
  params.early_stopping_rounds = 15;
  gbrt::BoostTrace trace;
  const auto model = gbrt::train_gbrt(train, params, 1, &trace, &valid);

  EXPECT_TRUE(trace.stopped_early);
  EXPECT_LT(model.tree_count(), 500u);
  EXPECT_EQ(model.tree_count(), trace.best_iteration + 1);
  EXPECT_FALSE(trace.valid_mse.empty());
  // The kept prefix is the validation optimum.
  const double best = *std::min_element(trace.valid_mse.begin(),
                                        trace.valid_mse.end());
  EXPECT_NEAR(trace.valid_mse[trace.best_iteration], best, 1e-12);
}

TEST(GbrtEarlyStopping, NoValidationMeansFullEnsemble) {
  const gbrt::Dataset data = outlier_data(5, 200);
  gbrt::GbrtParams params;
  params.trees = 40;
  params.early_stopping_rounds = 3;  // ignored without a validation set
  const auto model = gbrt::train_gbrt(data, params, 1);
  EXPECT_EQ(model.tree_count(), 40u);
}

// --- Weibull dwell analysis ---------------------------------------------------

TEST(Weibull, RecoversKnownParameters) {
  Rng rng(7);
  const double true_shape = 1.8;
  const double true_scale = 12.0;
  std::vector<double> samples;
  for (int i = 0; i < 30000; ++i) {
    // Inverse CDF sampling: x = lambda * (-ln U)^(1/k).
    samples.push_back(true_scale *
                      std::pow(-std::log(1.0 - rng.uniform()), 1.0 / true_shape));
  }
  const trace::WeibullFit fit = trace::fit_weibull(samples);
  EXPECT_NEAR(fit.shape, true_shape, 0.05);
  EXPECT_NEAR(fit.scale, true_scale, 0.3);
}

TEST(Weibull, ExponentialIsShapeOne) {
  Rng rng(8);
  std::vector<double> samples;
  for (int i = 0; i < 30000; ++i) samples.push_back(rng.exponential(5.0));
  const trace::WeibullFit fit = trace::fit_weibull(samples);
  EXPECT_NEAR(fit.shape, 1.0, 0.03);
  EXPECT_NEAR(fit.scale, 5.0, 0.15);
}

TEST(Weibull, RejectsDegenerateInput) {
  EXPECT_THROW(trace::fit_weibull({}), std::invalid_argument);
  EXPECT_THROW(trace::fit_weibull({1.0}), std::invalid_argument);
  EXPECT_THROW(trace::fit_weibull({-1.0, -2.0}), std::invalid_argument);
}

TEST(Weibull, ReadingTraceShowsNegativeAging) {
  // Liu/White/Dumais (the paper's ref [12]): web dwell times fit Weibull
  // with shape < 1. Our generated trace must reproduce that signature.
  Rng rng(9);
  std::vector<trace::PageRecord> records;
  for (int t = 0; t < corpus::kTopicCount; ++t) {
    trace::PageRecord record;
    record.spec.site = "s" + std::to_string(t);
    record.spec.topic = static_cast<corpus::Topic>(t);
    record.features.transmission_time = 8;
    record.features.page_height = rng.uniform(800, 4000);
    record.features.figure_count = rng.uniform(4, 30);
    records.push_back(record);
  }
  trace::TraceGenerator generator(records, trace::TraceConfig{}, 9);
  std::vector<double> readings;
  for (const auto& view : generator.generate()) {
    readings.push_back(view.reading_time);
  }
  const trace::WeibullFit fit = trace::fit_weibull(readings);
  EXPECT_LT(fit.shape, 1.0);
  EXPECT_GT(fit.shape, 0.3);
}

// --- capacity confidence intervals ---------------------------------------------

TEST(CapacityEstimate, CoversTheSingleRunEstimate) {
  capacity::CapacityConfig config;
  config.users = 420;
  config.horizon = 2000;
  const capacity::ServiceTimeDistribution service({14.0, 18.0});
  const auto estimate = capacity::estimate_capacity(config, service, 3, 8);
  EXPECT_GT(estimate.mean_drop, 0.0);
  EXPECT_GT(estimate.ci_halfwidth, 0.0);
  EXPECT_LT(estimate.ci_halfwidth, estimate.mean_drop);  // informative CI
  EXPECT_EQ(estimate.replications, 8);
  // An independent run lands inside a few halfwidths.
  const auto single = capacity::simulate_capacity(config, service, 999);
  EXPECT_NEAR(single.drop_probability, estimate.mean_drop,
              4 * estimate.ci_halfwidth + 1e-3);
}

TEST(CapacityEstimate, MoreReplicationsTightenTheInterval) {
  capacity::CapacityConfig config;
  config.users = 420;
  config.horizon = 1500;
  const capacity::ServiceTimeDistribution service({15.0});
  const auto few = capacity::estimate_capacity(config, service, 3, 4);
  const auto many = capacity::estimate_capacity(config, service, 3, 32);
  EXPECT_LT(many.ci_halfwidth, few.ci_halfwidth);
  EXPECT_THROW(capacity::estimate_capacity(config, service, 3, 1),
               std::invalid_argument);
}

// --- DOM selectors ----------------------------------------------------------------

TEST(Select, QuerySelectorSemantics) {
  const auto doc = web::parse_html(
      "<div id='top' class='wrap'><ul><li class='item'>a</li>"
      "<li class='item hot'>b</li></ul></div><p class='item'>c</p>");
  const auto& root = doc.dom.root();

  EXPECT_EQ(web::select_all(root, "li").size(), 2u);
  EXPECT_EQ(web::select_all(root, ".item").size(), 3u);
  EXPECT_EQ(web::select_all(root, "#top li.hot").size(), 1u);
  EXPECT_EQ(web::select_all(root, "ul .item, p").size(), 3u);
  EXPECT_EQ(web::select_all(root, "table").size(), 0u);

  const web::DomNode* hot = web::select_first(root, "li.hot");
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(hot->text_content(), "b");
  EXPECT_EQ(web::select_first(root, "video"), nullptr);
}

TEST(Select, DocumentOrderPreserved) {
  const auto doc = web::parse_html("<b id='x'>1</b><b id='y'>2</b><b id='z'>3</b>");
  const auto matches = web::select_all(doc.dom.root(), "b");
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0]->attr("id"), "x");
  EXPECT_EQ(matches[2]->attr("id"), "z");
}

}  // namespace
}  // namespace eab
