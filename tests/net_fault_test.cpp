// The deterministic network fault layer: decision purity, link fades and
// flow cancellation, the HTTP client's watchdog/retry/backoff machine, the
// RRC no-stuck-transfer-marker guarantee, and the end-to-end determinism
// contract (same seed + same plan => bit-identical LoadMetrics across
// serial, parallel and memo-replay execution; zero-fault plan => identical
// to a stack with no plan at all).
#include "net/fault.hpp"

#include <gtest/gtest.h>

#include "core/batch.hpp"
#include "core/experiment.hpp"
#include "corpus/page_spec.hpp"
#include "net/http_client.hpp"

namespace eab::net {
namespace {

// --- FaultInjector decision stream -------------------------------------------

TEST(FaultPlan, DisabledPlanIsInert) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  sim::Simulator sim;
  SharedLink link(sim, 100 * 1024);
  FaultInjector injector(sim, link, plan);
  EXPECT_EQ(injector.decide("http://x/a", 1).kind, FaultKind::kNone);
  EXPECT_EQ(sim.pending_count(), 0u);  // no fade events scheduled
}

TEST(FaultPlan, RatesAreValidated) {
  sim::Simulator sim;
  SharedLink link(sim, 100 * 1024);
  FaultPlan plan;
  plan.connection_loss_rate = 0.7;
  plan.stall_rate = 0.5;  // sums to 1.2
  EXPECT_THROW(FaultInjector(sim, link, plan), std::invalid_argument);
  plan.stall_rate = -0.1;
  EXPECT_THROW(FaultInjector(sim, link, plan), std::invalid_argument);
  plan.stall_rate = 0;
  plan.fade_count = 2;
  plan.fade_duration = 3.0;
  plan.fade_period = 2.0;  // windows would overlap
  EXPECT_THROW(FaultInjector(sim, link, plan), std::invalid_argument);
}

TEST(FaultInjector, DecisionsArePureInUrlAndAttempt) {
  FaultPlan plan;
  plan.seed = 42;
  plan.connection_loss_rate = 0.25;
  plan.stall_rate = 0.25;
  plan.truncate_rate = 0.25;
  plan.slow_first_byte_rate = 0.25;

  sim::Simulator sim_a, sim_b;
  SharedLink link_a(sim_a, 1024), link_b(sim_b, 1024);
  FaultInjector a(sim_a, link_a, plan);
  FaultInjector b(sim_b, link_b, plan);
  for (int i = 0; i < 50; ++i) {
    const std::string url = "http://site/" + std::to_string(i) + ".html";
    for (int attempt = 1; attempt <= 3; ++attempt) {
      const FaultDecision da = a.decide(url, attempt);
      // Same (url, attempt) in a different injector instance, queried in a
      // different order: identical outcome.
      const FaultDecision db = b.decide(url, attempt);
      EXPECT_EQ(da.kind, db.kind);
      EXPECT_DOUBLE_EQ(da.truncate_fraction, db.truncate_fraction);
      EXPECT_DOUBLE_EQ(da.extra_first_byte_latency, db.extra_first_byte_latency);
    }
  }
}

TEST(FaultInjector, FullRateAlwaysFires) {
  sim::Simulator sim;
  SharedLink link(sim, 1024);
  FaultPlan plan;
  plan.truncate_rate = 1.0;
  FaultInjector injector(sim, link, plan);
  for (int i = 0; i < 20; ++i) {
    const auto d = injector.decide("http://s/" + std::to_string(i), 1);
    EXPECT_EQ(d.kind, FaultKind::kTruncate);
    EXPECT_GT(d.truncate_fraction, 0.0);
    EXPECT_LT(d.truncate_fraction, 1.0);
  }
}

/// Finds a plan seed under which `url` suffers `first` on attempt 1 and
/// `second` on attempt 2 — lets tests script exact fault sequences while
/// keeping every decision on the production (hash-seeded) path.
std::uint64_t find_seed(FaultPlan plan, const std::string& url,
                        FaultKind first, FaultKind second) {
  sim::Simulator sim;
  SharedLink link(sim, 1024);
  for (std::uint64_t seed = 1; seed < 20000; ++seed) {
    plan.seed = seed;
    FaultInjector probe(sim, link, plan);
    if (probe.decide(url, 1).kind == first &&
        probe.decide(url, 2).kind == second) {
      return seed;
    }
  }
  ADD_FAILURE() << "no seed found for requested fault sequence";
  return 1;
}

// --- SharedLink: cancellation and fades ---------------------------------------

TEST(SharedLinkFaults, CancelledFlowNeverCompletes) {
  sim::Simulator sim;
  SharedLink link(sim, 1000.0);
  bool a_done = false, b_done = false;
  const auto a = link.start_flow(1000, [&] { a_done = true; });
  link.start_flow(1000, [&] { b_done = true; });
  sim.run_until(0.5);  // half-way: each flow has ~250 of 1000 bytes
  EXPECT_TRUE(link.cancel_flow(a));
  EXPECT_FALSE(link.cancel_flow(a));  // already gone
  sim.run();
  EXPECT_FALSE(a_done);
  EXPECT_TRUE(b_done);
  // B got the whole link after the cancel: 250 delivered shared + 750 solo.
  EXPECT_NEAR(sim.now(), 0.5 + 0.75, 1e-9);
  EXPECT_EQ(link.delivered(), 1000u);  // cancelled partial bytes not counted
}

TEST(SharedLinkFaults, PauseFreezesProgressExactly) {
  sim::Simulator sim;
  SharedLink link(sim, 1000.0);
  Seconds done_at = -1;
  link.start_flow(1000, [&] { done_at = sim.now(); });
  sim.run_until(0.4);
  link.pause();
  EXPECT_TRUE(link.paused());
  sim.run_until(2.4);  // 2 s of fade: nothing drains
  EXPECT_EQ(link.active_flows(), 1u);
  link.resume();
  sim.run();
  // 1 s of real drain time + 2 s frozen.
  EXPECT_NEAR(done_at, 3.0, 1e-9);
}

TEST(SharedLinkFaults, FadeWindowsPauseTheLink) {
  sim::Simulator sim;
  SharedLink link(sim, 1000.0);
  FaultPlan plan;
  plan.fade_count = 2;
  plan.fade_start = 0.25;
  plan.fade_period = 1.0;
  plan.fade_duration = 0.5;
  FaultInjector injector(sim, link, plan);

  Seconds done_at = -1;
  link.start_flow(1000, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(injector.fades_started(), 2);
  // 1 s of drain stretched across two 0.5 s fades: 0.25 drain, 0.5 fade,
  // 0.5 drain, 0.5 fade, 0.25 drain.
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

// --- HttpClient: watchdog, retries, terminal statuses -------------------------

struct FaultedHttpFixture : ::testing::Test {
  sim::Simulator sim;
  radio::RrcConfig rrc_config;
  radio::RadioPowerModel power;
  radio::LinkConfig link_config;
  WebServer server;
  radio::RrcMachine rrc{sim, rrc_config, power};
  SharedLink link{sim, link_config.dch_bandwidth};

  FaultedHttpFixture() {
    Resource page;
    page.url = "http://x/a.html";
    page.kind = ResourceKind::kHtml;
    page.size = kilobytes(10);
    page.body = "<html><body><p>ten kilobytes of page</p></body></html>";
    server.host(page);

    Resource image;  // cacheable kind (documents always revalidate)
    image.url = "http://x/i.jpg";
    image.kind = ResourceKind::kImage;
    image.size = kilobytes(6);
    server.host(image);
  }

  RetryPolicy quick_retry() {
    RetryPolicy policy;
    policy.request_timeout = 5.0;
    policy.max_retries = 2;
    policy.backoff_initial = 0.5;
    policy.backoff_factor = 2.0;
    return policy;
  }
};

TEST_F(FaultedHttpFixture, StallEveryAttemptTimesOutTerminally) {
  FaultPlan plan;
  plan.stall_rate = 1.0;
  FaultInjector injector(sim, link, plan);
  HttpClient client(sim, server, link, rrc, link_config);
  client.set_fault_injector(&injector);
  client.set_retry_policy(quick_retry());

  FetchResult result;
  bool settled = false;
  client.fetch("http://x/a.html", [&](const FetchResult& r) {
    settled = true;
    result = r;
  });
  sim.run();
  ASSERT_TRUE(settled);
  EXPECT_EQ(result.resource, nullptr);
  EXPECT_EQ(result.status, FetchStatus::kTimedOut);
  EXPECT_EQ(result.attempts, 3);  // 1 + 2 retries
  EXPECT_EQ(client.stats().timeouts, 3u);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_EQ(client.stats().failed, 1u);
  EXPECT_EQ(client.in_flight(), 0);
}

TEST_F(FaultedHttpFixture, NoStuckTransferMarkerAfterFailures) {
  FaultPlan plan;
  plan.stall_rate = 1.0;
  FaultInjector injector(sim, link, plan);
  HttpClient client(sim, server, link, rrc, link_config);
  client.set_fault_injector(&injector);
  client.set_retry_policy(quick_retry());

  Seconds settled_at = -1;
  client.fetch("http://x/a.html",
               [&](const FetchResult&) { settled_at = sim.now(); });
  sim.run();
  ASSERT_GE(settled_at, 0.0);
  // The acceptance bound: a leaked begin_transfer would pin the radio on
  // DCH-transmit forever (timers cancelled). With the marker correctly
  // released on every abort, T1 then T2 bring the radio home.
  EXPECT_EQ(rrc.state(), radio::RrcState::kIdle);
  EXPECT_LE(sim.now(), settled_at + rrc_config.t1 + rrc_config.t2 + 1e-9);
  // Every attempt burnt real air time: the radio saw DCH residency.
  EXPECT_GT(rrc.time_in(radio::RrcState::kDch), 0.0);
}

TEST_F(FaultedHttpFixture, ConnectionLossRetriesThenSucceeds) {
  FaultPlan plan;
  plan.connection_loss_rate = 0.5;
  plan.seed = find_seed(plan, "http://x/a.html", FaultKind::kConnectionLost,
                        FaultKind::kNone);
  FaultInjector injector(sim, link, plan);
  HttpClient client(sim, server, link, rrc, link_config);
  client.set_fault_injector(&injector);
  client.set_retry_policy(quick_retry());

  FetchResult result;
  client.fetch("http://x/a.html", [&](const FetchResult& r) { result = r; });
  sim.run();
  ASSERT_NE(result.resource, nullptr);
  EXPECT_EQ(result.status, FetchStatus::kOk);
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(client.stats().connection_losses, 1u);
  EXPECT_EQ(client.stats().retries, 1u);
  EXPECT_EQ(client.stats().fetches, 1u);
  EXPECT_EQ(rrc.state(), radio::RrcState::kIdle);  // timers ran out post-load
}

TEST_F(FaultedHttpFixture, ConnectionLossExhaustionAborts) {
  FaultPlan plan;
  plan.connection_loss_rate = 1.0;
  FaultInjector injector(sim, link, plan);
  HttpClient client(sim, server, link, rrc, link_config);
  client.set_fault_injector(&injector);
  RetryPolicy policy = quick_retry();
  policy.max_retries = 1;
  client.set_retry_policy(policy);

  FetchResult result;
  client.fetch("http://x/a.html", [&](const FetchResult& r) { result = r; });
  sim.run();
  EXPECT_EQ(result.resource, nullptr);
  EXPECT_EQ(result.status, FetchStatus::kAborted);
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(client.stats().connection_losses, 2u);
  EXPECT_EQ(rrc.state(), radio::RrcState::kIdle);
}

TEST_F(FaultedHttpFixture, TruncationDeliversPartialBody) {
  FaultPlan plan;
  plan.truncate_rate = 1.0;
  FaultInjector injector(sim, link, plan);
  HttpClient client(sim, server, link, rrc, link_config);
  client.set_fault_injector(&injector);
  client.set_retry_policy(quick_retry());

  FetchResult result;
  client.fetch("http://x/a.html", [&](const FetchResult& r) { result = r; });
  sim.run();
  ASSERT_NE(result.resource, nullptr)
      << to_string(result.status) << " attempts=" << result.attempts;
  EXPECT_EQ(result.status, FetchStatus::kTruncated);
  ASSERT_NE(result.owned, nullptr);
  const Resource* original = server.find("http://x/a.html");
  EXPECT_LT(result.resource->size, original->size);
  EXPECT_GE(result.resource->size, 1u);
  // The body is a strict prefix of the real body.
  EXPECT_TRUE(original->body.rfind(result.resource->body, 0) == 0);
  EXPECT_EQ(client.stats().truncated, 1u);
  // Partial bytes crossed the air and are charged.
  EXPECT_EQ(client.stats().bytes_fetched, result.resource->size);
}

TEST_F(FaultedHttpFixture, TruncatedBodiesNeverEnterTheCache) {
  FaultPlan plan;
  plan.truncate_rate = 1.0;
  FaultInjector injector(sim, link, plan);
  ResourceCache cache(kilobytes(512));
  HttpClient client(sim, server, link, rrc, link_config);
  client.set_fault_injector(&injector);
  client.set_cache(&cache);
  client.set_retry_policy(quick_retry());

  FetchResult result;
  client.fetch("http://x/i.jpg", [&](const FetchResult& r) { result = r; });
  sim.run();
  ASSERT_EQ(result.status, FetchStatus::kTruncated);
  EXPECT_EQ(cache.lookup("http://x/i.jpg"), nullptr);
}

TEST_F(FaultedHttpFixture, SlowFirstByteDelaysNotFails) {
  FaultPlan plan;
  plan.slow_first_byte_rate = 1.0;
  plan.slow_first_byte_extra = 1.0;
  FaultInjector injector(sim, link, plan);
  HttpClient client(sim, server, link, rrc, link_config);
  client.set_fault_injector(&injector);
  // Watchdog far beyond the inflation: the fetch succeeds, just later.
  RetryPolicy policy;
  policy.request_timeout = 30.0;
  client.set_retry_policy(policy);

  FetchResult result;
  client.fetch("http://x/a.html", [&](const FetchResult& r) { result = r; });
  sim.run();
  ASSERT_NE(result.resource, nullptr);
  EXPECT_EQ(result.status, FetchStatus::kOk);
  const Seconds clean_path =
      rrc_config.idle_to_dch_delay + link_config.rtt +
      link_config.server_latency + link_config.slow_start_delay(kilobytes(10)) +
      static_cast<double>(kilobytes(10)) / link_config.dch_bandwidth;
  EXPECT_GT(result.completed_at, clean_path + 0.5 - 1e-9);
}

TEST_F(FaultedHttpFixture, WatchdogCoversPromotionTime) {
  // A watchdog shorter than the IDLE->DCH promotion: the attempt is
  // abandoned while the radio is still promoting, and the late
  // channel-ready callback must not leak a transfer marker.
  HttpClient client(sim, server, link, rrc, link_config);
  RetryPolicy policy;
  policy.request_timeout = 1.0;  // < idle_to_dch_delay (3.25)
  policy.max_retries = 0;
  client.set_retry_policy(policy);

  FetchResult result;
  client.fetch("http://x/a.html", [&](const FetchResult& r) { result = r; });
  sim.run();
  EXPECT_EQ(result.status, FetchStatus::kTimedOut);
  EXPECT_EQ(result.resource, nullptr);
  EXPECT_EQ(rrc.state(), radio::RrcState::kIdle);  // promotion+timers resolved
}

// --- end-to-end determinism contract ------------------------------------------

core::StackConfig faulted_config(browser::PipelineMode mode) {
  auto config = core::StackConfig::for_mode(mode);
  config.fault_plan.seed = 11;
  config.fault_plan.connection_loss_rate = 0.08;
  config.fault_plan.stall_rate = 0.04;
  config.fault_plan.truncate_rate = 0.08;
  config.fault_plan.slow_first_byte_rate = 0.05;
  config.fault_plan.fade_count = 2;
  config.fault_plan.fade_start = 2.0;
  config.fault_plan.fade_period = 8.0;
  config.fault_plan.fade_duration = 1.5;
  config.retry.request_timeout = 8.0;
  config.retry.max_retries = 2;
  return config;
}

bool same_result(const core::SingleLoadResult& a,
                 const core::SingleLoadResult& b) {
  return a.metrics.total_time() == b.metrics.total_time() &&
         a.metrics.transmission_time() == b.metrics.transmission_time() &&
         a.metrics.first_display == b.metrics.first_display &&
         a.metrics.bytes_fetched == b.metrics.bytes_fetched &&
         a.metrics.objects_fetched == b.metrics.objects_fetched &&
         a.metrics.failed_resources == b.metrics.failed_resources &&
         a.metrics.truncated_resources == b.metrics.truncated_resources &&
         a.metrics.fetch_retries == b.metrics.fetch_retries &&
         a.energy.load_j == b.energy.load_j &&
         a.energy.with_reading_j == b.energy.with_reading_j &&
         a.dch_time == b.dch_time && a.sim_events == b.sim_events &&
         a.dom_signature == b.dom_signature;
}

TEST(FaultDeterminism, SerialParallelAndMemoReplayAreBitIdentical) {
  const auto specs = corpus::full_benchmark();
  ASSERT_GE(specs.size(), 2u);
  std::vector<core::BatchJob> jobs;
  for (int i = 0; i < 4; ++i) {
    core::BatchJob job;
    job.spec = specs[i % 2];
    job.config = faulted_config(i < 2 ? browser::PipelineMode::kOriginal
                                      : browser::PipelineMode::kEnergyAware);
    job.reading_window = 5.0;
    job.seed = derive_seed(3, static_cast<std::uint64_t>(i));
    jobs.push_back(std::move(job));
  }

  std::vector<core::SingleLoadResult> serial;
  for (const auto& job : jobs) {
    serial.push_back(core::run_single_load(job.spec, job.config,
                                           job.reading_window, job.seed));
  }
  core::BatchRunner runner(3);  // force a real pool
  const auto parallel = runner.run(jobs);
  const auto replay = runner.run(jobs);  // every key a memo hit
  EXPECT_EQ(runner.cache_hits(), jobs.size());
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(same_result(serial[i], parallel[i])) << "parallel job " << i;
    EXPECT_TRUE(same_result(serial[i], replay[i])) << "replay job " << i;
  }
  // The faults actually bit: at least one load saw degradation or retries.
  int degraded = 0;
  for (const auto& r : serial) {
    degraded += r.failed_resources + r.truncated_resources + r.fetch_retries;
  }
  EXPECT_GT(degraded, 0);
}

TEST(FaultDeterminism, MemoKeySeparatesFaultFields) {
  core::BatchJob a;
  a.spec = corpus::full_benchmark()[0];
  a.config = core::StackConfig::for_mode(browser::PipelineMode::kOriginal);
  core::BatchJob b = a;
  b.config.fault_plan.connection_loss_rate = 0.1;
  core::BatchJob c = a;
  c.config.retry.request_timeout = 9.0;
  EXPECT_NE(core::batch_memo_key(a), core::batch_memo_key(b));
  EXPECT_NE(core::batch_memo_key(a), core::batch_memo_key(c));
  EXPECT_NE(core::batch_memo_key(b), core::batch_memo_key(c));
}

TEST(FaultDeterminism, ZeroFaultPlanMatchesNoPlanBitForBit) {
  const auto spec = corpus::mobile_benchmark()[0];
  for (const auto mode : {browser::PipelineMode::kOriginal,
                          browser::PipelineMode::kEnergyAware}) {
    const auto plain = core::StackConfig::for_mode(mode);
    auto zeroed = plain;
    zeroed.fault_plan = net::FaultPlan{};  // disabled by construction
    zeroed.fault_plan.seed = 999;  // a disabled plan's seed must not leak
    const auto a = core::run_single_load(spec, plain, 10.0, 5);
    const auto b = core::run_single_load(spec, zeroed, 10.0, 5);
    EXPECT_TRUE(same_result(a, b));
    EXPECT_EQ(a.sim_events, b.sim_events);  // not one extra event scheduled
    EXPECT_EQ(a.fetch_retries, 0);
    EXPECT_EQ(a.failed_resources + a.truncated_resources, 0);
  }
}

TEST(FaultDeterminism, StallWithoutWatchdogIsRejected) {
  auto config = core::StackConfig::for_mode(browser::PipelineMode::kOriginal);
  config.fault_plan.stall_rate = 0.5;
  config.retry.request_timeout = 0.0;
  EXPECT_THROW(core::run_single_load(corpus::mobile_benchmark()[0], config,
                                     5.0, 1),
               std::invalid_argument);
}

// --- pipeline-level degradation -----------------------------------------------

TEST(FaultedPipeline, LoadsFinishGracefullyUnderHeavyLoss) {
  const auto specs = corpus::full_benchmark();
  for (const auto mode : {browser::PipelineMode::kOriginal,
                          browser::PipelineMode::kEnergyAware}) {
    auto config = core::StackConfig::for_mode(mode);
    config.fault_plan.seed = 77;
    config.fault_plan.connection_loss_rate = 0.15;
    config.fault_plan.stall_rate = 0.10;
    config.fault_plan.truncate_rate = 0.15;
    config.retry.request_timeout = 6.0;
    config.retry.max_retries = 1;

    const auto result = core::run_single_load(specs[0], config, 5.0, 9);
    // The load settled with a final display despite the carnage...
    EXPECT_GT(result.metrics.final_display, 0.0);
    EXPECT_GE(result.metrics.final_display, result.metrics.transmission_done);
    // ...something actually degraded at 40 % fault rates...
    EXPECT_GT(result.failed_resources + result.truncated_resources, 0);
    EXPECT_GE(result.metrics.degraded_fraction(), 0.0);
    EXPECT_LE(result.metrics.degraded_fraction(), 1.0);
    // ...and the DOM is still a usable tree.
    EXPECT_FALSE(result.dom_signature.empty());
  }
}

TEST(FaultedPipeline, DegradedLoadIsDeterministic) {
  auto config = core::StackConfig::for_mode(browser::PipelineMode::kEnergyAware);
  config.fault_plan.seed = 5;
  config.fault_plan.truncate_rate = 0.3;
  config.fault_plan.connection_loss_rate = 0.2;
  config.retry.request_timeout = 6.0;
  const auto spec = corpus::full_benchmark()[1];
  const auto a = core::run_single_load(spec, config, 5.0, 4);
  const auto b = core::run_single_load(spec, config, 5.0, 4);
  EXPECT_TRUE(same_result(a, b));
  EXPECT_EQ(a.dom_signature, b.dom_signature);
}

}  // namespace
}  // namespace eab::net
