#include "web/html_parser.hpp"

#include <gtest/gtest.h>

#include "web/html_tokenizer.hpp"

namespace eab::web {
namespace {

TEST(HtmlTokenizer, BasicTagsAndText) {
  const auto tokens = tokenize_html("<p>hello</p>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, HtmlToken::Type::kStartTag);
  EXPECT_EQ(tokens[0].name, "p");
  EXPECT_EQ(tokens[1].type, HtmlToken::Type::kText);
  EXPECT_EQ(tokens[1].text, "hello");
  EXPECT_EQ(tokens[2].type, HtmlToken::Type::kEndTag);
}

TEST(HtmlTokenizer, AttributesQuotedAndUnquoted) {
  const auto tokens =
      tokenize_html(R"(<img src="a.jpg" width=120 alt='the pic' disabled>)");
  ASSERT_EQ(tokens.size(), 1u);
  const auto& tag = tokens[0];
  ASSERT_EQ(tag.attrs.size(), 4u);
  EXPECT_EQ(tag.attrs[0], (std::pair<std::string, std::string>{"src", "a.jpg"}));
  EXPECT_EQ(tag.attrs[1].second, "120");
  EXPECT_EQ(tag.attrs[2].second, "the pic");
  EXPECT_EQ(tag.attrs[3].second, "");  // bare attribute
}

TEST(HtmlTokenizer, TagNamesLowercased) {
  const auto tokens = tokenize_html("<DIV CLASS=x></DIV>");
  EXPECT_EQ(tokens[0].name, "div");
  EXPECT_EQ(tokens[0].attrs[0].first, "class");
  EXPECT_EQ(tokens[1].name, "div");
}

TEST(HtmlTokenizer, CommentsAndDoctype) {
  const auto tokens = tokenize_html("<!doctype html><!-- note --><b>x</b>");
  EXPECT_EQ(tokens[0].type, HtmlToken::Type::kDoctype);
  EXPECT_EQ(tokens[1].type, HtmlToken::Type::kComment);
  EXPECT_EQ(tokens[1].text, " note ");
}

TEST(HtmlTokenizer, SelfClosingTag) {
  const auto tokens = tokenize_html("<br/>");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].self_closing);
}

TEST(HtmlTokenizer, ScriptBodyIsRawText) {
  const auto tokens =
      tokenize_html("<script>if (a < b) { x = \"<div>\"; }</script>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, HtmlToken::Type::kText);
  EXPECT_EQ(tokens[1].text, "if (a < b) { x = \"<div>\"; }");
  EXPECT_EQ(tokens[2].type, HtmlToken::Type::kEndTag);
}

TEST(HtmlTokenizer, LiteralLessThanIsText) {
  const auto tokens = tokenize_html("a < b and c<5");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].text, "a < b and c<5");
}

TEST(HtmlTokenizer, UnterminatedConstructsDoNotThrow) {
  EXPECT_NO_THROW(tokenize_html("<div class='x"));
  EXPECT_NO_THROW(tokenize_html("<!-- never closed"));
  EXPECT_NO_THROW(tokenize_html("<script>var x = 1;"));
  EXPECT_NO_THROW(tokenize_html("<"));
}

TEST(HtmlParser, BuildsNestedTree) {
  const auto parsed = parse_html("<div><p>one</p><p>two</p></div>");
  const auto divs = parsed.dom.find_all("div");
  ASSERT_EQ(divs.size(), 1u);
  EXPECT_EQ(divs[0]->children().size(), 2u);
  EXPECT_EQ(parsed.dom.find_all("p").size(), 2u);
  EXPECT_EQ(parsed.dom.root().text_content(), "onetwo");
}

TEST(HtmlParser, VoidElementsDoNotNest) {
  const auto parsed = parse_html("<p><img src='a.jpg'>text</p>");
  const auto imgs = parsed.dom.find_all("img");
  ASSERT_EQ(imgs.size(), 1u);
  EXPECT_TRUE(imgs[0]->children().empty());
  // The text lands in <p>, not inside <img>.
  EXPECT_EQ(imgs[0]->parent()->tag(), "p");
  EXPECT_EQ(parsed.dom.root().text_content(), "text");
}

TEST(HtmlParser, StrayEndTagsIgnored) {
  const auto parsed = parse_html("</div><p>ok</p></span>");
  EXPECT_EQ(parsed.dom.find_all("p").size(), 1u);
}

TEST(HtmlParser, MisnestedTagsRecover) {
  const auto parsed = parse_html("<b><i>x</b></i>");
  EXPECT_EQ(parsed.dom.find_all("b").size(), 1u);
  EXPECT_EQ(parsed.dom.find_all("i").size(), 1u);
}

TEST(HtmlParser, HarvestsImageScriptCssRefs) {
  const auto parsed = parse_html(R"(
    <link rel="stylesheet" href="s.css">
    <link rel="icon" href="fav.ico">
    <img src="a.jpg"><img>
    <script src="x.js"></script>
    <embed src="f.swf">
    <object data="g.swf"></object>
    <iframe src="frame.html"></iframe>
  )");
  ASSERT_EQ(parsed.references.size(), 6u);
  EXPECT_EQ(parsed.references[0].url, "s.css");
  EXPECT_EQ(parsed.references[0].kind, net::ResourceKind::kCss);
  EXPECT_EQ(parsed.references[1].kind, net::ResourceKind::kImage);
  EXPECT_EQ(parsed.references[2].kind, net::ResourceKind::kJs);
  EXPECT_EQ(parsed.references[3].kind, net::ResourceKind::kFlash);
  EXPECT_EQ(parsed.references[4].kind, net::ResourceKind::kFlash);
  EXPECT_EQ(parsed.references[5].kind, net::ResourceKind::kHtml);
}

TEST(HtmlParser, InlineScriptsCollectedInOrder) {
  const auto parsed = parse_html(
      "<script>first();</script><p>x</p><script>second();</script>");
  ASSERT_EQ(parsed.inline_scripts.size(), 2u);
  EXPECT_EQ(parsed.inline_scripts[0], "first();");
  EXPECT_EQ(parsed.inline_scripts[1], "second();");
}

TEST(HtmlParser, ScriptWithSrcIsNotInline) {
  const auto parsed = parse_html("<script src='x.js'></script>");
  EXPECT_TRUE(parsed.inline_scripts.empty());
  ASSERT_EQ(parsed.references.size(), 1u);
}

TEST(HtmlParser, SecondaryUrlsFromAnchors) {
  const auto parsed =
      parse_html("<a href='one.html'>1</a><a>no-href</a><a href='two.html'>2</a>");
  ASSERT_EQ(parsed.secondary_urls.size(), 2u);
  EXPECT_EQ(parsed.secondary_urls[0], "one.html");
}

TEST(HtmlParser, TextBytesCountVisibleTextOnly) {
  const auto parsed = parse_html("<p>12345</p>  <script>abcdef</script>");
  EXPECT_EQ(parsed.text_bytes, 5u);
}

TEST(HtmlParser, FragmentAppendsUnderParent) {
  ParsedHtml doc = parse_html("<div id='host'></div>");
  auto hosts = doc.dom.find_all("div");
  ASSERT_EQ(hosts.size(), 1u);
  // Find the mutable node: root's first child.
  DomNode& host = *doc.dom.root().children().front();
  parse_html_fragment("<p>added</p><img src='d.jpg'>", host, doc);
  EXPECT_EQ(host.children().size(), 2u);
  ASSERT_EQ(doc.references.size(), 1u);
  EXPECT_EQ(doc.references[0].url, "d.jpg");
}

TEST(DomTree, SignatureDetectsStructuralDifference) {
  const auto a = parse_html("<div><p>abc</p></div>");
  const auto b = parse_html("<div><p>abc</p></div>");
  const auto c = parse_html("<div><p>abcd</p></div>");
  EXPECT_EQ(a.dom.signature(), b.dom.signature());
  EXPECT_NE(a.dom.signature(), c.dom.signature());
}

TEST(DomTree, SignatureIgnoresAttributeOrder) {
  const auto a = parse_html("<div a='1' b='2'></div>");
  const auto b = parse_html("<div b='2' a='1'></div>");
  EXPECT_EQ(a.dom.signature(), b.dom.signature());
}

TEST(DomNode, SubtreeMetrics) {
  const auto parsed = parse_html("<div><p>x</p><p><b>y</b></p></div>");
  EXPECT_EQ(parsed.dom.node_count(), 7u);  // root, div, p, text, p, b, text
  EXPECT_EQ(parsed.dom.root().subtree_depth(), 5u);
}

TEST(DomNode, AttributeAccess) {
  const auto parsed = parse_html("<img src='a.jpg' width='10'>");
  const DomNode* img = parsed.dom.find_first("img");
  ASSERT_NE(img, nullptr);
  EXPECT_EQ(img->attr("src"), "a.jpg");
  EXPECT_TRUE(img->has_attr("width"));
  EXPECT_FALSE(img->has_attr("height"));
  EXPECT_EQ(img->attr("height"), "");
}

TEST(HtmlParser, EmptyAndWhitespaceDocuments) {
  EXPECT_EQ(parse_html("").dom.node_count(), 1u);
  EXPECT_EQ(parse_html("   \n\t  ").dom.node_count(), 1u);
}

TEST(HtmlParser, DeeplyNestedDocumentSurvives) {
  std::string html;
  for (int i = 0; i < 200; ++i) html += "<div>";
  html += "deep";
  for (int i = 0; i < 200; ++i) html += "</div>";
  const auto parsed = parse_html(html);
  EXPECT_EQ(parsed.dom.find_all("div").size(), 200u);
  EXPECT_EQ(parsed.dom.root().text_content(), "deep");
}

}  // namespace
}  // namespace eab::web
