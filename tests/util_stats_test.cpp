#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace eab {
namespace {

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({-1.0, 1.0}), 0.0);
}

TEST(Stats, VarianceBasics) {
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({7.0}), 0.0);
  // Sample variance of {2, 4, 4, 4, 5, 5, 7, 9} is 32/7.
  EXPECT_NEAR(variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
}

TEST(Stats, StddevIsRootOfVariance) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(variance(xs)));
}

TEST(Stats, PercentileEndpointsAndMedian) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(median(xs), 25);
  EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 9.0}), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 75), 7.5);
}

TEST(Stats, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({9, 1, 5}, 50), 5);
}

TEST(Stats, PercentileRejectsBadInput) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(Stats, PearsonPerfectCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {2, 5, 9}), 0.0);
}

TEST(Stats, PearsonIndependentNearZero) {
  Rng rng(1);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(rng.normal());
    ys.push_back(rng.normal());
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.03);
}

TEST(Stats, PearsonSizeMismatchThrows) {
  EXPECT_THROW(pearson({1, 2}, {1}), std::invalid_argument);
}

TEST(Stats, EmpiricalCdf) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(empirical_cdf_at(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(empirical_cdf_at(xs, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(empirical_cdf_at(xs, 10), 1.0);
  EXPECT_DOUBLE_EQ(empirical_cdf_at({}, 1.0), 0.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0, 10, 5);
  h.add(1.0);   // bin 0
  h.add(3.0);   // bin 1
  h.add(-5.0);  // clamped to bin 0
  h.add(99.0);  // clamped to bin 4
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0, 10, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
}

TEST(Histogram, CumulativeFraction) {
  Histogram h(0, 4, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(2.5);
  h.add(3.5);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(0), 0.25);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(3), 1.0);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(0, 0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0, 10, 0), std::invalid_argument);
}

}  // namespace
}  // namespace eab
