#include "core/ril.hpp"

#include <gtest/gtest.h>

#include "core/session.hpp"

namespace eab::core {
namespace {

struct RilFixture : ::testing::Test {
  sim::Simulator sim;
  radio::RrcConfig rrc_config;
  radio::RadioPowerModel power;
  radio::RrcMachine rrc{sim, rrc_config, power};

  void bring_to_fach() {
    rrc.request_channel([this] {
      rrc.begin_transfer();
      rrc.end_transfer();
    });
    sim.run_until(rrc_config.idle_to_dch_delay + rrc_config.t1 + 0.5);
    ASSERT_EQ(rrc.state(), radio::RrcState::kFach);
  }
};

TEST_F(RilFixture, RequestTravelsTheChainThenReleases) {
  bring_to_fach();
  RilLatencies latencies;
  RilStateSwitcher ril(sim, rrc, latencies);
  const Seconds requested = sim.now();

  bool switched = false;
  ril.request_idle([&](bool ok) { switched = ok; });
  // Not yet: the message is still travelling.
  EXPECT_EQ(rrc.phase(), radio::RadioPhase::kStable);
  sim.run_until(requested + latencies.total() + 0.001);
  EXPECT_TRUE(switched);
  EXPECT_EQ(rrc.phase(), radio::RadioPhase::kReleasing);

  sim.run_until(requested + latencies.total() + rrc_config.release_delay + 0.1);
  EXPECT_EQ(rrc.state(), radio::RrcState::kIdle);
  EXPECT_EQ(ril.requests_sent(), 1);
  EXPECT_EQ(ril.releases_started(), 1);
}

TEST_F(RilFixture, RequestOnIdleRadioReportsFalse) {
  RilStateSwitcher ril(sim, rrc);
  bool result = true;
  ril.request_idle([&](bool ok) { result = ok; });
  sim.run();
  EXPECT_FALSE(result);
  EXPECT_EQ(ril.releases_started(), 0);
}

TEST_F(RilFixture, SocketFailureLeavesRadioUnderTimerControl) {
  bring_to_fach();
  RilStateSwitcher ril(sim, rrc);
  ril.fail_next(1);
  bool result = true;
  ril.request_idle([&](bool ok) { result = ok; });
  const Seconds fach_entered = sim.now();
  sim.run_until(fach_entered + 1.0);
  EXPECT_FALSE(result);
  EXPECT_EQ(ril.socket_failures(), 1);
  EXPECT_EQ(rrc.state(), radio::RrcState::kFach);  // untouched

  // T2 still demotes the radio eventually — no wedge.
  sim.run_until(fach_entered + rrc_config.t2 + 1.0);
  EXPECT_EQ(rrc.state(), radio::RrcState::kIdle);
}

TEST_F(RilFixture, FailureInjectionIsConsumed) {
  bring_to_fach();
  RilStateSwitcher ril(sim, rrc);
  ril.fail_next(1);
  ril.request_idle();
  sim.run_until(sim.now() + 0.1);
  EXPECT_EQ(ril.socket_failures(), 1);

  // Second request goes through (radio is still FACH).
  bool switched = false;
  ril.request_idle([&](bool ok) { switched = ok; });
  sim.run();
  EXPECT_TRUE(switched);
}

TEST(RilSessionFallback, ExhaustedRetriesStillDemoteViaTimersInSession) {
  // The isolated SocketFailureLeavesRadioUnderTimerControl test drives the
  // switcher by hand; this one asserts the same guarantee inside a full
  // run_session, where the policy fires the requests and the next page's
  // promotion depends on the radio actually being timer-controlled.
  corpus::PageSpec mobile = corpus::m_cnn_spec();
  corpus::PageSpec full = corpus::espn_sports_spec();
  const std::vector<PageVisit> visits = {
      {&mobile, 25.0}, {&full, 40.0}, {&mobile, 8.0}};

  SessionConfig config;
  config.policy = SessionPolicy::kOriginalAlwaysOff;  // requests IDLE per page
  config.ril_socket_failures = 3;  // every request dies at the socket hop

  const SessionResult result = run_session(visits, config, 1);
  EXPECT_EQ(result.pages, 3);
  // No release ever started: every switch attempt failed...
  EXPECT_EQ(result.switches_to_idle, 0);
  EXPECT_EQ(result.ril_socket_failures, 3);
  // ...yet the radio still reached IDLE during the long reading gaps: the
  // T1/T2 timers demoted it (a wedged transfer marker would pin DCH and
  // radio_idle_time would be zero).
  EXPECT_GT(result.radio_idle_time, 0.0);
  // And the session matches the plain baseline bit for bit: failed releases
  // leave the radio exactly as if the policy had never asked.
  SessionConfig baseline;
  baseline.policy = SessionPolicy::kBaseline;
  const SessionResult plain = run_session(visits, baseline, 1);
  EXPECT_DOUBLE_EQ(result.energy.with_reading_j, plain.energy.with_reading_j);
  EXPECT_DOUBLE_EQ(result.radio_idle_time, plain.radio_idle_time);
  EXPECT_DOUBLE_EQ(result.total_load_delay, plain.total_load_delay);
}

TEST_F(RilFixture, CallbackIsOptional) {
  bring_to_fach();
  RilStateSwitcher ril(sim, rrc);
  EXPECT_NO_THROW(ril.request_idle());
  sim.run();
  EXPECT_EQ(rrc.state(), radio::RrcState::kIdle);
}

TEST_F(RilFixture, DuplicateRequestsOnlyOneRelease) {
  bring_to_fach();
  RilStateSwitcher ril(sim, rrc);
  int successes = 0;
  for (int i = 0; i < 3; ++i) {
    ril.request_idle([&](bool ok) { successes += ok ? 1 : 0; });
  }
  sim.run();
  EXPECT_EQ(successes, 1);  // the release is already in flight for the rest
  EXPECT_EQ(rrc.forced_releases(), 1);
}

}  // namespace
}  // namespace eab::core
