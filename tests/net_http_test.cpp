#include "net/http_client.hpp"

#include <gtest/gtest.h>

#include "net/socket_downloader.hpp"

namespace eab::net {
namespace {

struct HttpFixture : ::testing::Test {
  sim::Simulator sim;
  radio::RrcConfig rrc_config;
  radio::RadioPowerModel power;
  radio::LinkConfig link_config;
  WebServer server;

  HttpFixture() {
    Resource resource;
    resource.url = "http://x/a.html";
    resource.kind = ResourceKind::kHtml;
    resource.size = kilobytes(10);
    resource.body = "<html></html>";
    server.host(resource);

    Resource image;
    image.url = "http://x/i.jpg";
    image.kind = ResourceKind::kImage;
    image.size = kilobytes(5);
    server.host(image);
  }
};

TEST_F(HttpFixture, WebServerLookup) {
  EXPECT_NE(server.find("http://x/a.html"), nullptr);
  EXPECT_EQ(server.find("http://x/missing"), nullptr);
  EXPECT_EQ(server.resource_count(), 2u);
  EXPECT_EQ(server.total_bytes(), kilobytes(15));
}

TEST_F(HttpFixture, WebServerReplacesSameUrl) {
  Resource updated;
  updated.url = "http://x/a.html";
  updated.size = 123;
  server.host(updated);
  EXPECT_EQ(server.resource_count(), 2u);
  EXPECT_EQ(server.find("http://x/a.html")->size, 123u);
}

TEST_F(HttpFixture, WebServerRejectsEmptyUrl) {
  EXPECT_THROW(server.host(Resource{}), std::invalid_argument);
}

TEST_F(HttpFixture, FetchDeliversResourceAfterPromotionAndTransfer) {
  radio::RrcMachine rrc(sim, rrc_config, power);
  SharedLink link(sim, link_config.dch_bandwidth);
  HttpClient client(sim, server, link, rrc, link_config);

  FetchResult result;
  client.fetch("http://x/a.html", [&](const FetchResult& r) { result = r; });
  sim.run();

  ASSERT_NE(result.resource, nullptr);
  EXPECT_EQ(result.resource->url, "http://x/a.html");
  // Time = promotion + rtt + server latency (+ slow start if over threshold)
  // + transfer.
  const Seconds expected = rrc_config.idle_to_dch_delay + link_config.rtt +
                           link_config.server_latency +
                           link_config.slow_start_delay(kilobytes(10)) +
                           static_cast<double>(kilobytes(10)) /
                               link_config.dch_bandwidth;
  EXPECT_NEAR(result.completed_at, expected, 1e-6);
}

TEST_F(HttpFixture, UnknownUrlReportsNullResource) {
  radio::RrcMachine rrc(sim, rrc_config, power);
  SharedLink link(sim, link_config.dch_bandwidth);
  HttpClient client(sim, server, link, rrc, link_config);

  bool called = false;
  client.fetch("http://x/missing", [&](const FetchResult& r) {
    called = true;
    EXPECT_EQ(r.resource, nullptr);
  });
  sim.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(client.stats().not_found, 1u);
}

TEST_F(HttpFixture, ParallelismIsBounded) {
  radio::RrcMachine rrc(sim, rrc_config, power);
  SharedLink link(sim, link_config.dch_bandwidth);
  HttpClient client(sim, server, link, rrc, link_config, 2);

  for (int i = 0; i < 5; ++i) {
    client.fetch("http://x/i.jpg", [](const FetchResult&) {});
  }
  EXPECT_EQ(client.in_flight(), 2);
  EXPECT_EQ(client.queued(), 3u);
  sim.run();
  EXPECT_EQ(client.in_flight(), 0);
  EXPECT_EQ(client.stats().fetches, 5u);
}

TEST_F(HttpFixture, HighPriorityJumpsQueue) {
  radio::RrcMachine rrc(sim, rrc_config, power);
  SharedLink link(sim, link_config.dch_bandwidth);
  HttpClient client(sim, server, link, rrc, link_config, 1);

  std::vector<std::string> completion_order;
  auto record = [&](const FetchResult& r) { completion_order.push_back(r.url); };
  client.fetch("http://x/a.html", record);          // starts immediately
  client.fetch("http://x/i.jpg", record);           // queued
  client.fetch("http://x/a.html", record, true);    // jumps the image
  sim.run();
  ASSERT_EQ(completion_order.size(), 3u);
  EXPECT_EQ(completion_order[1], "http://x/a.html");
  EXPECT_EQ(completion_order[2], "http://x/i.jpg");
}

TEST_F(HttpFixture, StatsTrackBytesAndTimes) {
  radio::RrcMachine rrc(sim, rrc_config, power);
  SharedLink link(sim, link_config.dch_bandwidth);
  HttpClient client(sim, server, link, rrc, link_config);

  client.fetch("http://x/a.html", [](const FetchResult&) {});
  client.fetch("http://x/i.jpg", [](const FetchResult&) {});
  sim.run();
  EXPECT_EQ(client.stats().bytes_fetched, kilobytes(15));
  EXPECT_DOUBLE_EQ(client.stats().first_request_at, 0.0);
  EXPECT_GT(client.stats().last_byte_at, 0.0);
}

TEST_F(HttpFixture, CacheHitUpdatesLastByteAt) {
  // Regression: the cache-hit path used to leave last_byte_at at whatever
  // the previous *network* fetch set, so a revisit load that ended on cache
  // hits reported a transfer window that excluded its final deliveries.
  // Semantics now: last_byte_at is when the most recent fetch settled,
  // wherever the bytes came from.
  radio::RrcMachine rrc(sim, rrc_config, power);
  SharedLink link(sim, link_config.dch_bandwidth);
  ResourceCache cache(kilobytes(512));
  HttpClient client(sim, server, link, rrc, link_config);
  client.set_cache(&cache);

  // Use the image: documents always revalidate, subresources cache.
  client.fetch("http://x/i.jpg", [](const FetchResult&) {});
  sim.run();
  const Seconds network_last_byte = client.stats().last_byte_at;
  EXPECT_GT(network_last_byte, 0.0);

  // Much later, the same URL is served from the cache.
  Seconds hit_completed = -1;
  sim.schedule_in(100.0, [&] {
    client.fetch("http://x/i.jpg", [&](const FetchResult& r) {
      EXPECT_EQ(r.attempts, 0);  // no network attempt behind a hit
      EXPECT_EQ(r.status, FetchStatus::kOk);
      hit_completed = r.completed_at;
    });
  });
  sim.run();
  EXPECT_EQ(client.stats().cache_hits, 1u);
  ASSERT_GT(hit_completed, 100.0);
  // The stat moved forward to the cache delivery, matching completed_at.
  EXPECT_DOUBLE_EQ(client.stats().last_byte_at, hit_completed);
  EXPECT_GT(client.stats().last_byte_at, network_last_byte);
}

TEST_F(HttpFixture, RadioReturnsToIdleAfterFetchAndTimers) {
  radio::RrcMachine rrc(sim, rrc_config, power);
  SharedLink link(sim, link_config.dch_bandwidth);
  HttpClient client(sim, server, link, rrc, link_config);

  client.fetch("http://x/a.html", [](const FetchResult&) {});
  sim.run();
  EXPECT_EQ(rrc.state(), radio::RrcState::kIdle);
  EXPECT_GT(rrc.time_in(radio::RrcState::kDch), 0.0);
  EXPECT_NEAR(rrc.time_in(radio::RrcState::kFach), rrc_config.t2, 1e-6);
}

TEST_F(HttpFixture, SocketDownloaderSingleStream) {
  radio::RrcMachine rrc(sim, rrc_config, power);
  SharedLink link(sim, link_config.dch_bandwidth);
  SocketDownloader downloader(sim, link, rrc, link_config);

  Seconds finished = -1;
  downloader.download(kilobytes(760), [&](Seconds, Seconds end) { finished = end; });
  sim.run();
  const Seconds expected = rrc_config.idle_to_dch_delay + link_config.rtt +
                           link_config.server_latency +
                           static_cast<double>(kilobytes(760)) /
                               link_config.dch_bandwidth;
  EXPECT_NEAR(finished, expected, 1e-6);
  EXPECT_EQ(rrc.idle_promotions(), 1);
}

TEST_F(HttpFixture, SlowStartDelayShape) {
  radio::LinkConfig config;
  EXPECT_DOUBLE_EQ(config.slow_start_delay(config.slow_start_threshold), 0.0);
  EXPECT_GT(config.slow_start_delay(config.slow_start_threshold * 4), 0.0);
  // Capped for huge responses.
  EXPECT_NEAR(config.slow_start_delay(kilobytes(100000)),
              config.rtt * config.slow_start_rounds_cap, 1e-9);
  // Monotone in size.
  EXPECT_LE(config.slow_start_delay(kilobytes(20)),
            config.slow_start_delay(kilobytes(40)));
}

}  // namespace
}  // namespace eab::net
