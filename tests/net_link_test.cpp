#include "net/shared_link.hpp"

#include <gtest/gtest.h>

#include "net/resource.hpp"

namespace eab::net {
namespace {

TEST(SharedLink, SingleFlowTakesBytesOverCapacity) {
  sim::Simulator sim;
  SharedLink link(sim, 1000.0);  // 1000 B/s
  Seconds done_at = -1;
  link.start_flow(5000, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);
}

TEST(SharedLink, TwoEqualFlowsShareFairly) {
  sim::Simulator sim;
  SharedLink link(sim, 1000.0);
  Seconds first = -1;
  Seconds second = -1;
  link.start_flow(1000, [&] { first = sim.now(); });
  link.start_flow(1000, [&] { second = sim.now(); });
  sim.run();
  // Each gets 500 B/s until the first finishes; both finish at t=2.
  EXPECT_NEAR(first, 2.0, 1e-9);
  EXPECT_NEAR(second, 2.0, 1e-9);
}

TEST(SharedLink, ShortFlowFinishesFirstThenLongSpeedsUp) {
  sim::Simulator sim;
  SharedLink link(sim, 1000.0);
  Seconds small_done = -1;
  Seconds large_done = -1;
  link.start_flow(500, [&] { small_done = sim.now(); });
  link.start_flow(2000, [&] { large_done = sim.now(); });
  sim.run();
  // Shared at 500 B/s: small done at t=1 (large has 1500 left), then full
  // rate: large done at t=1 + 1.5 = 2.5.
  EXPECT_NEAR(small_done, 1.0, 1e-9);
  EXPECT_NEAR(large_done, 2.5, 1e-9);
}

TEST(SharedLink, LateJoinerSlowsExistingFlow) {
  sim::Simulator sim;
  SharedLink link(sim, 1000.0);
  Seconds first_done = -1;
  link.start_flow(2000, [&] { first_done = sim.now(); });
  sim.schedule_at(1.0, [&] { link.start_flow(10000, [] {}); });
  sim.run_until(10.0);
  // First second alone (1000 B), then shared 500 B/s for remaining 1000 B.
  EXPECT_NEAR(first_done, 3.0, 1e-9);
}

TEST(SharedLink, ZeroByteFlowCompletes) {
  sim::Simulator sim;
  SharedLink link(sim, 1000.0);
  bool done = false;
  link.start_flow(0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

TEST(SharedLink, DeliveredBytesAccumulate) {
  sim::Simulator sim;
  SharedLink link(sim, 1000.0);
  link.start_flow(300, [] {});
  link.start_flow(700, [] {});
  sim.run();
  EXPECT_EQ(link.delivered(), 1000u);
}

TEST(SharedLink, RateHistoryShowsBusyAndIdle) {
  sim::Simulator sim;
  SharedLink link(sim, 1000.0);
  link.start_flow(1000, [] {});
  sim.run();
  sim.run_until(5.0);
  // Busy on [0,1): integral of rate = total bytes.
  EXPECT_NEAR(link.rate_history().energy(0.0, 5.0), 1000.0, 1e-6);
  EXPECT_DOUBLE_EQ(link.rate_history().current_power(), 0.0);
}

TEST(SharedLink, ChainedFlowsFromCompletionCallback) {
  sim::Simulator sim;
  SharedLink link(sim, 100.0);
  int completed = 0;
  std::function<void()> chain = [&] {
    if (++completed < 5) link.start_flow(100, chain);
  };
  link.start_flow(100, chain);
  sim.run();
  EXPECT_EQ(completed, 5);
  EXPECT_NEAR(sim.now(), 5.0, 1e-9);
}

TEST(SharedLink, RejectsBadArguments) {
  sim::Simulator sim;
  EXPECT_THROW(SharedLink(sim, 0.0), std::invalid_argument);
  SharedLink link(sim, 10.0);
  EXPECT_THROW(link.start_flow(1, nullptr), std::invalid_argument);
}

TEST(SharedLink, ConservesBytesUnderManyOverlappingFlows) {
  sim::Simulator sim;
  SharedLink link(sim, 1234.0);
  Bytes total = 0;
  for (int i = 1; i <= 20; ++i) {
    const Bytes size = static_cast<Bytes>(i * 137);
    total += size;
    sim.schedule_at(i * 0.1, [&link, size] { link.start_flow(size, [] {}); });
  }
  sim.run();
  EXPECT_EQ(link.delivered(), total);
  // All bytes drained through the rate history too.
  EXPECT_NEAR(link.rate_history().energy(0, sim.now()),
              static_cast<double>(total), 1.0);
}

TEST(ResourceKind, FromUrl) {
  EXPECT_EQ(kind_from_url("http://a/b.css"), ResourceKind::kCss);
  EXPECT_EQ(kind_from_url("http://a/b.js"), ResourceKind::kJs);
  EXPECT_EQ(kind_from_url("http://a/b.JPG"), ResourceKind::kImage);
  EXPECT_EQ(kind_from_url("http://a/b.png?v=2"), ResourceKind::kImage);
  EXPECT_EQ(kind_from_url("http://a/b.swf"), ResourceKind::kFlash);
  EXPECT_EQ(kind_from_url("http://a/b.html"), ResourceKind::kHtml);
  EXPECT_EQ(kind_from_url("http://a/page"), ResourceKind::kHtml);
  EXPECT_EQ(kind_from_url("b.weird"), ResourceKind::kOther);
}

TEST(ResourceKind, Names) {
  EXPECT_STREQ(to_string(ResourceKind::kHtml), "html");
  EXPECT_STREQ(to_string(ResourceKind::kImage), "image");
}

}  // namespace
}  // namespace eab::net
