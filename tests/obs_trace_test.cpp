// Tests for the observability subsystem: trace recording, the metrics
// registry, serial/parallel determinism of both, the no-trace identity
// contract, and the cross-layer TraceAuditor (including that it actually
// rejects manufactured violations).
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/batch.hpp"
#include "core/session.hpp"
#include "obs/audit.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace eab::obs {
namespace {

/// Small page so each traced load stays cheap.
corpus::PageSpec tiny_spec(int variant) {
  corpus::PageSpec spec;
  spec.site = "obs.example/" + std::to_string(variant);
  spec.mobile = true;
  spec.html_bytes = kilobytes(6);
  spec.css_files = 1;
  spec.css_bytes = kilobytes(2);
  spec.css_images = 1;
  spec.js_files = 1;
  spec.js_bytes = kilobytes(2);
  spec.js_busy_iterations = 200;
  spec.js_images = 1;
  spec.html_images = 2;
  spec.image_bytes = kilobytes(3);
  spec.anchors = 4;
  spec.paragraphs = 4;
  return spec;
}

core::StackConfig traced_config(browser::PipelineMode mode) {
  auto config = core::StackConfig::for_mode(mode);
  config.trace = true;
  return config;
}

/// The bench_ext_faults 20 % composite mix.
core::StackConfig faulty_config(browser::PipelineMode mode) {
  auto config = traced_config(mode);
  config.fault_plan.seed = 20130707;
  config.fault_plan.connection_loss_rate = 0.08;
  config.fault_plan.stall_rate = 0.04;
  config.fault_plan.truncate_rate = 0.04;
  config.fault_plan.slow_first_byte_rate = 0.04;
  config.retry.request_timeout = 8.0;
  config.retry.max_retries = 2;
  config.retry.backoff_initial = 0.5;
  config.retry.backoff_factor = 2.0;
  return config;
}

AuditInputs inputs_for(const core::StackConfig& config,
                       const core::SingleLoadResult& r) {
  AuditInputs inputs;
  inputs.rrc = config.rrc;
  inputs.power = config.power;
  inputs.max_retries = config.retry.max_retries;
  inputs.radio_energy = r.energy.radio_j;
  inputs.t_end = r.energy.window_s;
  return inputs;
}

TEST(TraceRecorder, InternsStringsStably) {
  TraceRecorder trace;
  const auto a = trace.intern("http://a");
  const auto b = trace.intern("http://b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, trace.intern("http://a"));
  EXPECT_EQ(trace.name(a), "http://a");
  EXPECT_EQ(trace.name(b), "http://b");
}

TEST(TraceRecorder, CountsAndEquality) {
  TraceRecorder one, two;
  one.record(1.0, TraceKind::kRrcTimerSet, 1, 0, 5.0);
  one.record(2.0, TraceKind::kRrcTimerFire, 1);
  two.record(1.0, TraceKind::kRrcTimerSet, 1, 0, 5.0);
  EXPECT_EQ(one.count(TraceKind::kRrcTimerSet), 1u);
  EXPECT_EQ(one.count(TraceKind::kRrcTimerFire), 1u);
  EXPECT_EQ(one.count(TraceKind::kRrcTimerCancel), 0u);
  EXPECT_FALSE(one.same_as(two));
  two.record(2.0, TraceKind::kRrcTimerFire, 1);
  EXPECT_TRUE(one.same_as(two));
}

TEST(MetricsRegistry, CountersGaugesHistograms) {
  MetricsRegistry m;
  m.count("jobs");
  m.count("jobs", 2);
  m.set_max("peak", 5);
  m.set_max("peak", 3);  // gauges keep the max
  m.observe("load_s", 0.5);
  m.observe("load_s", 2.5);
  EXPECT_DOUBLE_EQ(m.value("jobs"), 3);
  EXPECT_DOUBLE_EQ(m.value("peak"), 5);
  EXPECT_DOUBLE_EQ(m.value("absent"), 0);
  const Histogram* h = m.histogram("load_s");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 3.0);
  EXPECT_DOUBLE_EQ(h->min, 0.5);
  EXPECT_DOUBLE_EQ(h->max, 2.5);
}

TEST(MetricsRegistry, MergeCombinesByKind) {
  MetricsRegistry a, b;
  a.count("n", 2);
  b.count("n", 3);
  a.set_max("peak", 7);
  b.set_max("peak", 9);
  a.observe("t", 1.0);
  b.observe("t", 4.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value("n"), 5);
  EXPECT_DOUBLE_EQ(a.value("peak"), 9);
  EXPECT_EQ(a.histogram("t")->count, 2u);
  EXPECT_DOUBLE_EQ(a.histogram("t")->sum, 5.0);
}

TEST(MetricsRegistry, MergeKindMismatchThrows) {
  MetricsRegistry a, b;
  a.count("x");
  b.set_max("x", 1);
  EXPECT_THROW(a.merge(b), std::logic_error);
}

TEST(MetricsRegistry, JsonIsDeterministic) {
  MetricsRegistry a, b;
  // Insert in different orders; the sorted map canonicalizes.
  a.count("zeta", 1);
  a.count("alpha", 2);
  b.count("alpha", 2);
  b.count("zeta", 1);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_NE(a.to_json().find("\"alpha\""), std::string::npos);
}

TEST(Simulator, TracksCancellationAndHeapCounters) {
  sim::Simulator sim;
  const auto keep = sim.schedule_in(1.0, [] {});
  const auto drop = sim.schedule_in(2.0, [] {});
  sim.schedule_in(3.0, [] {});
  EXPECT_EQ(sim.peak_heap_size(), 3u);
  EXPECT_TRUE(sim.cancel(drop));
  EXPECT_FALSE(sim.cancel(drop));  // second cancel is a no-op
  EXPECT_EQ(sim.cancelled_count(), 1u);
  sim.run();
  EXPECT_EQ(sim.fired_count(), 2u);
  EXPECT_EQ(sim.tombstones_popped(), 1u);
  EXPECT_FALSE(sim.cancel(keep));  // already fired
  EXPECT_EQ(sim.cancelled_count(), 1u);
}

TEST(ObsIdentity, TracingChangesNoResult) {
  const auto spec = tiny_spec(0);
  for (const auto mode : {browser::PipelineMode::kOriginal,
                          browser::PipelineMode::kEnergyAware}) {
    auto plain_cfg = core::StackConfig::for_mode(mode);
    const auto traced_cfg = traced_config(mode);
    const auto plain = core::run_single_load(spec, plain_cfg, 5.0, 1);
    const auto traced = core::run_single_load(spec, traced_cfg, 5.0, 1);
    EXPECT_EQ(plain.trace, nullptr);
    ASSERT_NE(traced.trace, nullptr);
    EXPECT_GT(traced.trace->size(), 0u);
    // The whole contract: recording is pure observation.
    EXPECT_EQ(plain.sim_events, traced.sim_events);
    EXPECT_EQ(plain.energy.load_j, traced.energy.load_j);
    EXPECT_EQ(plain.energy.with_reading_j, traced.energy.with_reading_j);
    EXPECT_EQ(plain.dom_signature, traced.dom_signature);
    EXPECT_EQ(plain.metrics.total_time(), traced.metrics.total_time());
    EXPECT_EQ(plain.energy.radio_j, traced.energy.radio_j);
    // job_metrics differ only in the trace.events counter.
    EXPECT_EQ(plain.job_metrics.value("sim.events_fired"),
              traced.job_metrics.value("sim.events_fired"));
    EXPECT_EQ(plain.job_metrics.value("http.fetches"),
              traced.job_metrics.value("http.fetches"));
    EXPECT_EQ(plain.job_metrics.value("trace.events"), 0);
    EXPECT_GT(traced.job_metrics.value("trace.events"), 0);
  }
}

TEST(ObsIdentity, FaultInjectedTracingChangesNoResult) {
  const auto spec = tiny_spec(1);
  auto plain_cfg = faulty_config(browser::PipelineMode::kEnergyAware);
  plain_cfg.trace = false;
  const auto traced_cfg = faulty_config(browser::PipelineMode::kEnergyAware);
  const auto plain = core::run_single_load(spec, plain_cfg, 5.0, 1);
  const auto traced = core::run_single_load(spec, traced_cfg, 5.0, 1);
  EXPECT_EQ(plain.sim_events, traced.sim_events);
  EXPECT_EQ(plain.energy.load_j, traced.energy.load_j);
  EXPECT_EQ(plain.fetch_retries, traced.fetch_retries);
  EXPECT_EQ(plain.dom_signature, traced.dom_signature);
}

TEST(Audit, CleanLoadsPassBothPipelines) {
  const auto spec = tiny_spec(0);
  for (const auto mode : {browser::PipelineMode::kOriginal,
                          browser::PipelineMode::kEnergyAware}) {
    const auto config = traced_config(mode);
    const auto r = core::run_single_load(spec, config, 5.0, 1);
    ASSERT_NE(r.trace, nullptr);
    const auto report = TraceAuditor().audit(*r.trace, inputs_for(config, r));
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_GT(report.transitions_checked, 0);
    EXPECT_GT(report.fetches_checked, 0);
    EXPECT_NEAR(report.trace_energy, report.reference_energy, 1e-6);
  }
}

TEST(Audit, FaultySweepPasses) {
  // Several seeds of the 20 % composite mix: retries, timeouts, truncations
  // and fades must all replay cleanly.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto config = faulty_config(browser::PipelineMode::kEnergyAware);
    config.fault_plan.seed = seed;
    const auto r = core::run_single_load(tiny_spec(2), config, 5.0, seed);
    ASSERT_NE(r.trace, nullptr);
    const auto report = TraceAuditor().audit(*r.trace, inputs_for(config, r));
    EXPECT_TRUE(report.ok()) << "seed " << seed << ":\n" << report.summary();
  }
}

TEST(Audit, SessionPoliciesPass) {
  const auto page = tiny_spec(3);
  const std::vector<core::PageVisit> visits = {
      {&page, 12.0}, {&page, 3.0}, {&page, 12.0}};
  for (const auto policy : {core::SessionPolicy::kBaseline,
                            core::SessionPolicy::kEnergyAwareAlwaysOff,
                            core::SessionPolicy::kAccurate}) {
    TraceRecorder recorder;
    core::SessionConfig config;
    config.policy = policy;
    config.trace = &recorder;
    const auto result = core::run_session(visits, config, 5);
    EXPECT_GT(recorder.size(), 0u);
    AuditInputs inputs;
    inputs.rrc = config.stack.rrc;
    inputs.power = config.stack.power;
    inputs.max_retries = config.stack.retry.max_retries;
    inputs.radio_energy = result.energy.radio_j;
    inputs.t_end = result.energy.window_s;
    const auto report = TraceAuditor().audit(recorder, inputs);
    EXPECT_TRUE(report.ok())
        << core::to_string(policy) << ":\n" << report.summary();
  }
}

TEST(Audit, SessionWithRilFailurePasses) {
  // A dead rild socket: the policy's release dies at the socket hop, the
  // radio demotes via timers alone.  The trace must still replay cleanly.
  const auto page = tiny_spec(3);
  const std::vector<core::PageVisit> visits = {{&page, 15.0}, {&page, 15.0}};
  TraceRecorder recorder;
  core::SessionConfig config;
  config.policy = core::SessionPolicy::kEnergyAwareAlwaysOff;
  config.ril_socket_failures = 1;
  config.trace = &recorder;
  const auto result = core::run_session(visits, config, 5);
  EXPECT_EQ(result.ril_socket_failures, 1);
  EXPECT_EQ(recorder.count(TraceKind::kRilSocketFailure), 1u);
  AuditInputs inputs;
  inputs.rrc = config.stack.rrc;
  inputs.power = config.stack.power;
  inputs.radio_energy = result.energy.radio_j;
  inputs.t_end = result.energy.window_s;
  const auto report = TraceAuditor().audit(recorder, inputs);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Audit, RejectsIllegalTransition) {
  TraceRecorder trace;
  // IDLE -> FACH has no transition path in the UMTS machine modeled here.
  trace.record(0.5, TraceKind::kRrcStateEnter, 0 /*IDLE*/, 1 /*FACH*/);
  AuditInputs inputs;
  inputs.t_end = 1.0;
  const auto report = TraceAuditor().audit(trace, inputs);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("transition"), std::string::npos)
      << report.summary();
}

TEST(Audit, RejectsLeakedTransferMarker) {
  TraceRecorder trace;
  trace.record(0.1, TraceKind::kRrcTransferBegin, 0, 1);
  AuditInputs inputs;
  inputs.t_end = 1.0;
  inputs.radio_energy = inputs.power.idle * 1.0;
  const auto report = TraceAuditor().audit(trace, inputs);
  EXPECT_FALSE(report.ok());
}

TEST(Audit, RejectsTamperedEnergy) {
  const auto config = traced_config(browser::PipelineMode::kEnergyAware);
  const auto r = core::run_single_load(tiny_spec(0), config, 5.0, 1);
  auto inputs = inputs_for(config, r);
  EXPECT_TRUE(TraceAuditor().audit(*r.trace, inputs).ok());
  inputs.radio_energy += 5.0;  // claim 5 J the events cannot explain
  const auto report = TraceAuditor().audit(*r.trace, inputs);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("energy"), std::string::npos)
      << report.summary();
}

TEST(Audit, RejectsRetryBudgetOverrun) {
  TraceRecorder trace;
  const auto url = trace.intern("http://x/a");
  trace.record(0.1, TraceKind::kHttpFetchQueued, 0, 0, 0, url);
  // 5 attempts against a budget of 1 + max_retries = 3.
  for (int attempt = 1; attempt <= 5; ++attempt) {
    trace.record(0.1 * attempt + 0.1, TraceKind::kHttpAttemptStart, attempt, 0,
                 0, url);
  }
  trace.record(1.0, TraceKind::kHttpFetchSettled, 5, 0, 100.0, url);
  AuditInputs inputs;
  inputs.max_retries = 2;
  inputs.t_end = 1.0;
  inputs.radio_energy = inputs.power.idle * 1.0;
  const auto report = TraceAuditor().audit(trace, inputs);
  EXPECT_FALSE(report.ok());
}

TEST(Batch, SerialAndParallelProduceIdenticalObservability) {
  std::vector<core::BatchJob> jobs;
  for (int i = 0; i < 8; ++i) {
    core::BatchJob job;
    job.spec = tiny_spec(i % 3);
    job.config = traced_config(i % 2 == 0 ? browser::PipelineMode::kOriginal
                                          : browser::PipelineMode::kEnergyAware);
    job.reading_window = 5.0;
    job.seed = derive_seed(42, static_cast<std::uint64_t>(i));
    jobs.push_back(std::move(job));
  }

  core::BatchRunner serial(1);
  core::BatchRunner parallel(4);
  const auto serial_results = serial.run(jobs);
  const auto parallel_results = parallel.run(jobs);

  // Metrics snapshots merge in submission order: bit-identical JSON.
  EXPECT_TRUE(serial.metrics().same_as(parallel.metrics()));
  EXPECT_EQ(serial.metrics().to_json(), parallel.metrics().to_json());
  EXPECT_DOUBLE_EQ(serial.metrics().value("batch.jobs"), 8);

  // Per-job traces are event-for-event identical.
  ASSERT_EQ(serial_results.size(), parallel_results.size());
  for (std::size_t i = 0; i < serial_results.size(); ++i) {
    ASSERT_NE(serial_results[i].trace, nullptr);
    ASSERT_NE(parallel_results[i].trace, nullptr);
    EXPECT_TRUE(
        serial_results[i].trace->same_as(*parallel_results[i].trace))
        << "job " << i;
  }
}

TEST(Batch, TraceFlagIsPartOfMemoKey) {
  core::BatchJob traced;
  traced.spec = tiny_spec(0);
  traced.config = traced_config(browser::PipelineMode::kEnergyAware);
  auto plain = traced;
  plain.config.trace = false;
  EXPECT_NE(core::batch_memo_key(traced), core::batch_memo_key(plain));

  // An untraced job must not be served a traced recording from the cache.
  core::BatchRunner runner(1);
  const auto first = runner.run({traced});
  const auto second = runner.run({plain});
  EXPECT_NE(first[0].trace, nullptr);
  EXPECT_EQ(second[0].trace, nullptr);
  EXPECT_EQ(first[0].sim_events, second[0].sim_events);
}

TEST(ChromeTrace, ExportsParseableRecords) {
  const auto config = traced_config(browser::PipelineMode::kEnergyAware);
  const auto r = core::run_single_load(tiny_spec(0), config, 5.0, 1);
  const std::string json = chrome_trace_json(*r.trace, r.energy.window_s);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  // Crude balance check so a missing comma or brace shows up.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace eab::obs
