#include "radio/rrc.hpp"

#include <gtest/gtest.h>

namespace eab::radio {
namespace {

struct RrcFixture : ::testing::Test {
  sim::Simulator sim;
  RrcConfig config;
  RadioPowerModel power;

  RrcMachine make() { return RrcMachine(sim, config, power); }
};

TEST_F(RrcFixture, StartsIdleAtIdlePower) {
  RrcMachine rrc = make();
  EXPECT_EQ(rrc.state(), RrcState::kIdle);
  EXPECT_EQ(rrc.phase(), RadioPhase::kStable);
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.idle);
}

TEST_F(RrcFixture, PromotionFromIdleTakesConfiguredDelay) {
  RrcMachine rrc = make();
  Seconds ready_at = -1;
  rrc.request_channel([&] { ready_at = sim.now(); });
  EXPECT_EQ(rrc.phase(), RadioPhase::kPromoting);
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), config.idle_to_dch_power);
  sim.run_until(config.idle_to_dch_delay + 0.1);
  EXPECT_DOUBLE_EQ(ready_at, config.idle_to_dch_delay);
  EXPECT_EQ(rrc.state(), RrcState::kDch);
  EXPECT_EQ(rrc.idle_promotions(), 1);
}

TEST_F(RrcFixture, RequestOnDchIsImmediate) {
  RrcMachine rrc = make();
  // Pin the radio on DCH with an active transfer (otherwise T1 demotes it).
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.5);
  ASSERT_EQ(rrc.state(), RrcState::kDch);
  bool ready = false;
  rrc.request_channel([&] { ready = true; });
  EXPECT_TRUE(ready);  // synchronous when already on DCH
  rrc.end_transfer();
}

TEST_F(RrcFixture, MultipleWaitersFlushTogether) {
  RrcMachine rrc = make();
  int ready = 0;
  rrc.request_channel([&] { ++ready; });
  rrc.request_channel([&] { ++ready; });
  rrc.request_channel([&] { ++ready; });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  EXPECT_EQ(ready, 3);
  EXPECT_EQ(rrc.idle_promotions(), 1);  // one promotion serves all
}

TEST_F(RrcFixture, TransferPowerAndDemotionChain) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.dch_transfer);

  rrc.end_transfer();
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.dch_no_transfer);
  const Seconds transfer_end = sim.now();

  // T1 demotes to FACH.
  sim.run_until(transfer_end + config.t1 + 0.1);
  EXPECT_EQ(rrc.state(), RrcState::kFach);
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.fach);

  // T2 releases to IDLE.
  sim.run_until(transfer_end + config.t1 + config.t2 + 0.1);
  EXPECT_EQ(rrc.state(), RrcState::kIdle);
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.idle);
}

TEST_F(RrcFixture, OverlappingTransfersKeepDchUntilLastEnds) {
  RrcMachine rrc = make();
  rrc.request_channel([&] {
    rrc.begin_transfer();
    rrc.begin_transfer();
  });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  rrc.end_transfer();
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.dch_transfer);
  rrc.end_transfer();
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.dch_no_transfer);
}

TEST_F(RrcFixture, NewTransferResetsT1) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  rrc.end_transfer();
  const Seconds first_end = sim.now();

  // Just before T1 expiry, transfer again.
  sim.run_until(first_end + config.t1 - 0.5);
  rrc.begin_transfer();
  sim.run_until(first_end + config.t1 + 1.0);
  EXPECT_EQ(rrc.state(), RrcState::kDch);  // T1 was reset
  rrc.end_transfer();
  sim.run_until(sim.now() + config.t1 + 0.1);
  EXPECT_EQ(rrc.state(), RrcState::kFach);
}

TEST_F(RrcFixture, PromotionFromFachIsFaster) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  rrc.end_transfer();
  sim.run_until(sim.now() + config.t1 + 0.5);  // now FACH
  ASSERT_EQ(rrc.state(), RrcState::kFach);

  const Seconds requested = sim.now();
  Seconds ready_at = -1;
  rrc.request_channel([&] { ready_at = sim.now(); });
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), config.fach_to_dch_power);
  sim.run_until(requested + config.fach_to_dch_delay + 0.1);
  EXPECT_DOUBLE_EQ(ready_at, requested + config.fach_to_dch_delay);
  EXPECT_EQ(rrc.fach_promotions(), 1);
}

TEST_F(RrcFixture, TouchResetsTimers) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  rrc.end_transfer();
  const Seconds end = sim.now();
  sim.run_until(end + config.t1 - 0.5);
  rrc.touch();  // resets T1
  sim.run_until(end + config.t1 + 1.0);
  EXPECT_EQ(rrc.state(), RrcState::kDch);
}

TEST_F(RrcFixture, ForceIdleReleasesAfterSignalling) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  rrc.end_transfer();
  const Seconds release_start = sim.now();
  EXPECT_TRUE(rrc.force_idle());
  EXPECT_EQ(rrc.phase(), RadioPhase::kReleasing);
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), config.release_power);
  sim.run_until(release_start + config.release_delay + 0.1);
  EXPECT_EQ(rrc.state(), RrcState::kIdle);
  EXPECT_EQ(rrc.forced_releases(), 1);
}

TEST_F(RrcFixture, ForceIdleRefusedDuringTransferOrIdle) {
  RrcMachine rrc = make();
  EXPECT_FALSE(rrc.force_idle());  // already idle
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  EXPECT_FALSE(rrc.force_idle());  // transfer active
  rrc.end_transfer();
  EXPECT_TRUE(rrc.force_idle());
  EXPECT_FALSE(rrc.force_idle());  // already releasing
}

TEST_F(RrcFixture, RequestDuringReleaseRepromotesAfterwards) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  rrc.end_transfer();
  const Seconds release_start = sim.now();
  rrc.force_idle();
  Seconds ready_at = -1;
  rrc.request_channel([&] { ready_at = sim.now(); });
  sim.run_until(release_start + config.release_delay + config.idle_to_dch_delay + 0.5);
  EXPECT_DOUBLE_EQ(ready_at,
                   release_start + config.release_delay + config.idle_to_dch_delay);
}

TEST_F(RrcFixture, MisuseThrows) {
  RrcMachine rrc = make();
  EXPECT_THROW(rrc.begin_transfer(), std::logic_error);  // not on DCH
  EXPECT_THROW(rrc.end_transfer(), std::logic_error);    // nothing active
  EXPECT_THROW(rrc.request_channel(nullptr), std::invalid_argument);
}

TEST_F(RrcFixture, ResidencyAccountingSumsToElapsed) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(5.0);
  rrc.end_transfer();
  sim.run_until(60.0);
  const Seconds total = rrc.time_in(RrcState::kIdle) +
                        rrc.time_in(RrcState::kFach) +
                        rrc.time_in(RrcState::kDch);
  EXPECT_NEAR(total, 60.0, 1e-9);
  EXPECT_GT(rrc.time_in(RrcState::kFach), config.t2 - 0.1);
}

TEST_F(RrcFixture, EnergyMatchesHandComputedCycle) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run();
  const Seconds ready = config.idle_to_dch_delay;
  rrc.end_transfer();  // transfer of zero length: DCH reached, ends instantly
  sim.run_until(ready + config.t1 + config.t2 + 5.0);
  const Joules expected = config.idle_to_dch_power * config.idle_to_dch_delay +
                          power.dch_no_transfer * config.t1 +
                          power.fach * config.t2 + power.idle * 5.0;
  EXPECT_NEAR(rrc.power().energy(0, ready + config.t1 + config.t2 + 5.0),
              expected, 1e-6);
}

TEST_F(RrcFixture, SmallTransferRidesFachAndResetsT2) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  rrc.end_transfer();
  sim.run_until(sim.now() + config.t1 + 0.5);
  ASSERT_EQ(rrc.state(), RrcState::kFach);

  const Seconds fach_mark = sim.now();
  bool done = false;
  EXPECT_TRUE(rrc.small_transfer(300, [&] { done = true; }));
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.fach_transfer);
  sim.run_until(fach_mark + 300.0 / 300.0 + 0.01);
  EXPECT_TRUE(done);
  EXPECT_EQ(rrc.small_transfers(), 1);
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.fach);
  // T2 was reset by the shared-channel activity: still FACH at the time the
  // original T2 would have fired.
  sim.run_until(fach_mark + config.t2 + 0.5);
  EXPECT_EQ(rrc.state(), RrcState::kFach);
  sim.run_until(fach_mark + 1.0 + config.t2 + 0.5);
  EXPECT_EQ(rrc.state(), RrcState::kIdle);
}

TEST_F(RrcFixture, SmallTransferRefusedOffFachOrOversized) {
  RrcMachine rrc = make();
  EXPECT_FALSE(rrc.small_transfer(100, [] {}));  // IDLE
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  EXPECT_FALSE(rrc.small_transfer(100, [] {}));  // DCH
  rrc.end_transfer();
  sim.run_until(sim.now() + config.t1 + 0.5);
  ASSERT_EQ(rrc.state(), RrcState::kFach);
  EXPECT_FALSE(rrc.small_transfer(config.fach_data_threshold + 1, [] {}));
  EXPECT_THROW(rrc.small_transfer(10, nullptr), std::invalid_argument);
}

TEST_F(RrcFixture, OnlyOneSharedChannelSlot) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  rrc.end_transfer();
  sim.run_until(sim.now() + config.t1 + 0.5);
  ASSERT_EQ(rrc.state(), RrcState::kFach);
  EXPECT_TRUE(rrc.small_transfer(300, [] {}));
  EXPECT_FALSE(rrc.small_transfer(300, [] {}));  // slot busy
  sim.run_until(sim.now() + 1.5);
  EXPECT_TRUE(rrc.small_transfer(300, [] {}));  // freed
}

// --- radio-link failure and re-establishment (DESIGN.md "Radio failure
// model").  The coverage process normally drives these through
// net::OutageInjector; here the link-down/up edges are called directly so
// every branch of the machine is pinned at exact simulated instants.

TEST_F(RrcFixture, ShortFadeIsAbsorbedSilently) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.5);
  ASSERT_EQ(rrc.state(), RrcState::kDch);

  // Fade shorter than the T313 detection window: nothing happens.
  rrc.radio_link_down();
  sim.run_until(sim.now() + config.rlf_detect / 2);
  rrc.radio_link_up();
  sim.run_until(sim.now() + config.rlf_detect * 2);
  EXPECT_EQ(rrc.state(), RrcState::kDch);
  EXPECT_EQ(rrc.rlf_count(), 0);
  EXPECT_DOUBLE_EQ(rrc.time_in(RrcState::kOutOfService), 0.0);
  EXPECT_EQ(rrc.active_transfers(), 1);
  rrc.end_transfer();
}

TEST_F(RrcFixture, RlfFromDchSettlesTransfersAndCampsOutOfService) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.5);
  ASSERT_EQ(rrc.state(), RrcState::kDch);

  // The hook fires while the machine is still in the failing state, so the
  // HTTP layer can observe what was being abandoned.
  RrcState state_at_rlf = RrcState::kIdle;
  int transfers_at_rlf = -1;
  rrc.set_on_rlf([&] {
    state_at_rlf = rrc.state();
    transfers_at_rlf = rrc.active_transfers();
    rrc.end_transfer();
  });
  const Seconds down_at = sim.now();
  rrc.radio_link_down();
  sim.run_until(down_at + config.rlf_detect + 0.1);
  EXPECT_EQ(rrc.state(), RrcState::kOutOfService);
  EXPECT_EQ(rrc.phase(), RadioPhase::kStable);
  EXPECT_EQ(state_at_rlf, RrcState::kDch);
  EXPECT_EQ(transfers_at_rlf, 1);
  EXPECT_EQ(rrc.rlf_count(), 1);
  EXPECT_EQ(rrc.active_transfers(), 0);
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.out_of_service);
}

TEST_F(RrcFixture, IdleCoverageLossCampsWithoutRlf) {
  RrcMachine rrc = make();
  rrc.radio_link_down();
  sim.run_until(config.rlf_detect + 0.1);
  // From IDLE there is no link to fail: the UE just camps out of service.
  EXPECT_EQ(rrc.state(), RrcState::kOutOfService);
  EXPECT_EQ(rrc.rlf_count(), 0);

  // No RLF context, so recovery is plain cell reselection back to IDLE —
  // no re-establishment exchange.
  rrc.radio_link_up();
  EXPECT_EQ(rrc.state(), RrcState::kIdle);
  EXPECT_EQ(rrc.phase(), RadioPhase::kStable);
  EXPECT_EQ(rrc.reestablish_ok() + rrc.reestablish_fail(), 0);
}

TEST_F(RrcFixture, RequestQueuedOutOfServiceFlushesOnReselection) {
  RrcMachine rrc = make();
  rrc.radio_link_down();
  sim.run_until(config.rlf_detect + 0.1);
  ASSERT_EQ(rrc.state(), RrcState::kOutOfService);

  Seconds ready_at = -1;
  rrc.request_channel([&] { ready_at = sim.now(); });
  sim.run_until(sim.now() + 5.0);
  EXPECT_DOUBLE_EQ(ready_at, -1);  // still waiting: no data path at all

  const Seconds back_at = sim.now();
  rrc.radio_link_up();
  sim.run_until(back_at + config.idle_to_dch_delay + 0.1);
  EXPECT_DOUBLE_EQ(ready_at, back_at + config.idle_to_dch_delay);
  EXPECT_EQ(rrc.state(), RrcState::kDch);
}

TEST_F(RrcFixture, ReestablishmentRestoresDchAtConfiguredCost) {
  RrcMachine rrc = make();
  rrc.set_on_rlf([&] { rrc.end_transfer(); });
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.5);
  rrc.radio_link_down();
  sim.run_until(sim.now() + config.rlf_detect + 0.1);
  ASSERT_EQ(rrc.state(), RrcState::kOutOfService);
  ASSERT_EQ(rrc.rlf_count(), 1);

  // Coverage returns with a dangling RLF context: the UE runs one RRC
  // re-establishment exchange at promotion-grade power, then is back on DCH.
  Seconds ready_at = -1;
  rrc.request_channel([&] { ready_at = sim.now(); });
  const Seconds back_at = sim.now();
  rrc.radio_link_up();
  EXPECT_EQ(rrc.phase(), RadioPhase::kReestablishing);
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), config.reestablish_power);
  sim.run_until(back_at + config.reestablish_delay + 0.1);
  EXPECT_EQ(rrc.state(), RrcState::kDch);
  EXPECT_EQ(rrc.phase(), RadioPhase::kStable);
  EXPECT_EQ(rrc.reestablish_ok(), 1);
  EXPECT_EQ(rrc.reestablish_fail(), 0);
  EXPECT_DOUBLE_EQ(ready_at, back_at + config.reestablish_delay);
}

TEST_F(RrcFixture, FailedReestablishmentBacksOffThenReleasesContext) {
  RrcMachine rrc = make();
  rrc.set_on_rlf([&] { rrc.end_transfer(); });
  rrc.set_reestablish_decider([](int) { return false; });
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.5);
  rrc.radio_link_down();
  sim.run_until(sim.now() + config.rlf_detect + 0.1);
  ASSERT_EQ(rrc.state(), RrcState::kOutOfService);

  Seconds ready_at = -1;
  rrc.request_channel([&] { ready_at = sim.now(); });
  const Seconds back_at = sim.now();
  rrc.radio_link_up();

  // Attempt k spends reestablish_delay signalling, then backs off for
  // reestablish_backoff * 2^(k-1) camped OUT_OF_SERVICE before attempt k+1.
  Seconds t = back_at;
  for (int attempt = 1; attempt <= config.max_reestablish_attempts; ++attempt) {
    sim.run_until(t + config.reestablish_delay / 2);
    EXPECT_EQ(rrc.phase(), RadioPhase::kReestablishing);
    EXPECT_DOUBLE_EQ(rrc.power().current_power(), config.reestablish_power);
    sim.run_until(t + config.reestablish_delay + 1e-6);
    EXPECT_EQ(rrc.reestablish_fail(), attempt);
    t += config.reestablish_delay;
    if (attempt < config.max_reestablish_attempts) {
      // Mid-backoff: camped out of service, waiting to retry.
      const Seconds backoff =
          config.reestablish_backoff * (1 << (attempt - 1));
      sim.run_until(t + backoff / 2);
      EXPECT_EQ(rrc.phase(), RadioPhase::kStable);
      EXPECT_EQ(rrc.state(), RrcState::kOutOfService);
      t += backoff;
    }
  }

  // Final failure releases the RRC context: back to IDLE, and the waiting
  // request rebuilds the connection from scratch — the session never wedges.
  sim.run_until(t + 0.1);
  EXPECT_EQ(rrc.reestablish_ok(), 0);
  EXPECT_EQ(rrc.reestablish_fail(), config.max_reestablish_attempts);
  sim.run_until(t + config.idle_to_dch_delay + 0.1);
  EXPECT_EQ(rrc.state(), RrcState::kDch);
  EXPECT_DOUBLE_EQ(ready_at, t + config.idle_to_dch_delay);
}

TEST_F(RrcFixture, DeciderSucceedsOnConfiguredAttempt) {
  RrcMachine rrc = make();
  rrc.set_on_rlf([&] { rrc.end_transfer(); });
  rrc.set_reestablish_decider([](int attempt) { return attempt == 2; });
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.5);
  rrc.radio_link_down();
  sim.run_until(sim.now() + config.rlf_detect + 0.1);
  const Seconds back_at = sim.now();
  rrc.radio_link_up();
  // fail(1.2) + backoff(0.5) + ok(1.2)
  const Seconds recovered = back_at + config.reestablish_delay +
                            config.reestablish_backoff +
                            config.reestablish_delay;
  sim.run_until(recovered + 1e-6);
  EXPECT_EQ(rrc.state(), RrcState::kDch);
  EXPECT_EQ(rrc.reestablish_fail(), 1);
  EXPECT_EQ(rrc.reestablish_ok(), 1);
}

TEST_F(RrcFixture, NestedCoverageLossesMustAllClear) {
  RrcMachine rrc = make();
  // Two independent sources (per-UE fade + whole-cell blackout) overlap;
  // one restoring does not bring the link back.
  rrc.radio_link_down();
  rrc.radio_link_down();
  sim.run_until(config.rlf_detect + 0.1);
  ASSERT_EQ(rrc.state(), RrcState::kOutOfService);
  rrc.radio_link_up();
  sim.run_until(sim.now() + 1.0);
  EXPECT_EQ(rrc.state(), RrcState::kOutOfService);
  rrc.radio_link_up();
  EXPECT_EQ(rrc.state(), RrcState::kIdle);
}

TEST_F(RrcFixture, OutOfServiceResidencyAndEnergyAreAccounted) {
  RrcMachine rrc = make();
  rrc.radio_link_down();
  sim.run_until(config.rlf_detect + 0.1);
  ASSERT_EQ(rrc.state(), RrcState::kOutOfService);
  sim.run_until(sim.now() + 10.0);
  rrc.radio_link_up();
  sim.run_until(20.0);

  const Seconds oos = rrc.time_in(RrcState::kOutOfService);
  EXPECT_NEAR(oos, 10.0 + 0.1, 1e-9);
  const Seconds total = rrc.time_in(RrcState::kIdle) +
                        rrc.time_in(RrcState::kFach) +
                        rrc.time_in(RrcState::kDch) + oos;
  EXPECT_NEAR(total, 20.0, 1e-9);
  // Cell search draws more than IDLE but far less than connected signalling.
  const Joules expected = power.idle * (20.0 - oos) + power.out_of_service * oos;
  EXPECT_NEAR(rrc.power().energy(0, 20.0), expected, 1e-6);
}

TEST_F(RrcFixture, ForceIdleRefusedWhileCoverageLost) {
  RrcMachine rrc = make();
  rrc.set_on_rlf([&] { rrc.end_transfer(); });
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.5);
  rrc.radio_link_down();
  sim.run_until(sim.now() + config.rlf_detect + 0.1);
  ASSERT_EQ(rrc.state(), RrcState::kOutOfService);
  // Fast dormancy needs a signalling connection; out of service there is
  // none to tear down.
  EXPECT_FALSE(rrc.force_idle());
}

// Property sweep: timers compose for arbitrary configurations.
struct TimerParams {
  double t1;
  double t2;
};

class RrcTimerSweep : public ::testing::TestWithParam<TimerParams> {};

TEST_P(RrcTimerSweep, DemotionTimesFollowConfig) {
  sim::Simulator sim;
  RrcConfig config;
  config.t1 = GetParam().t1;
  config.t2 = GetParam().t2;
  RadioPowerModel power;
  RrcMachine rrc(sim, config, power);

  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.01);
  rrc.end_transfer();
  const Seconds end = sim.now();

  sim.run_until(end + config.t1 - 0.01);
  EXPECT_EQ(rrc.state(), RrcState::kDch);
  sim.run_until(end + config.t1 + 0.01);
  EXPECT_EQ(rrc.state(), RrcState::kFach);
  sim.run_until(end + config.t1 + config.t2 - 0.01);
  EXPECT_EQ(rrc.state(), RrcState::kFach);
  sim.run_until(end + config.t1 + config.t2 + 0.01);
  EXPECT_EQ(rrc.state(), RrcState::kIdle);
}

INSTANTIATE_TEST_SUITE_P(TimerGrid, RrcTimerSweep,
                         ::testing::Values(TimerParams{1, 2}, TimerParams{4, 15},
                                           TimerParams{2, 30}, TimerParams{8, 8},
                                           TimerParams{0.5, 60},
                                           TimerParams{10, 1}));

}  // namespace
}  // namespace eab::radio
