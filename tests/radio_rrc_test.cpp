#include "radio/rrc.hpp"

#include <gtest/gtest.h>

namespace eab::radio {
namespace {

struct RrcFixture : ::testing::Test {
  sim::Simulator sim;
  RrcConfig config;
  RadioPowerModel power;

  RrcMachine make() { return RrcMachine(sim, config, power); }
};

TEST_F(RrcFixture, StartsIdleAtIdlePower) {
  RrcMachine rrc = make();
  EXPECT_EQ(rrc.state(), RrcState::kIdle);
  EXPECT_EQ(rrc.phase(), RadioPhase::kStable);
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.idle);
}

TEST_F(RrcFixture, PromotionFromIdleTakesConfiguredDelay) {
  RrcMachine rrc = make();
  Seconds ready_at = -1;
  rrc.request_channel([&] { ready_at = sim.now(); });
  EXPECT_EQ(rrc.phase(), RadioPhase::kPromoting);
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), config.idle_to_dch_power);
  sim.run_until(config.idle_to_dch_delay + 0.1);
  EXPECT_DOUBLE_EQ(ready_at, config.idle_to_dch_delay);
  EXPECT_EQ(rrc.state(), RrcState::kDch);
  EXPECT_EQ(rrc.idle_promotions(), 1);
}

TEST_F(RrcFixture, RequestOnDchIsImmediate) {
  RrcMachine rrc = make();
  // Pin the radio on DCH with an active transfer (otherwise T1 demotes it).
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.5);
  ASSERT_EQ(rrc.state(), RrcState::kDch);
  bool ready = false;
  rrc.request_channel([&] { ready = true; });
  EXPECT_TRUE(ready);  // synchronous when already on DCH
  rrc.end_transfer();
}

TEST_F(RrcFixture, MultipleWaitersFlushTogether) {
  RrcMachine rrc = make();
  int ready = 0;
  rrc.request_channel([&] { ++ready; });
  rrc.request_channel([&] { ++ready; });
  rrc.request_channel([&] { ++ready; });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  EXPECT_EQ(ready, 3);
  EXPECT_EQ(rrc.idle_promotions(), 1);  // one promotion serves all
}

TEST_F(RrcFixture, TransferPowerAndDemotionChain) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.dch_transfer);

  rrc.end_transfer();
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.dch_no_transfer);
  const Seconds transfer_end = sim.now();

  // T1 demotes to FACH.
  sim.run_until(transfer_end + config.t1 + 0.1);
  EXPECT_EQ(rrc.state(), RrcState::kFach);
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.fach);

  // T2 releases to IDLE.
  sim.run_until(transfer_end + config.t1 + config.t2 + 0.1);
  EXPECT_EQ(rrc.state(), RrcState::kIdle);
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.idle);
}

TEST_F(RrcFixture, OverlappingTransfersKeepDchUntilLastEnds) {
  RrcMachine rrc = make();
  rrc.request_channel([&] {
    rrc.begin_transfer();
    rrc.begin_transfer();
  });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  rrc.end_transfer();
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.dch_transfer);
  rrc.end_transfer();
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.dch_no_transfer);
}

TEST_F(RrcFixture, NewTransferResetsT1) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  rrc.end_transfer();
  const Seconds first_end = sim.now();

  // Just before T1 expiry, transfer again.
  sim.run_until(first_end + config.t1 - 0.5);
  rrc.begin_transfer();
  sim.run_until(first_end + config.t1 + 1.0);
  EXPECT_EQ(rrc.state(), RrcState::kDch);  // T1 was reset
  rrc.end_transfer();
  sim.run_until(sim.now() + config.t1 + 0.1);
  EXPECT_EQ(rrc.state(), RrcState::kFach);
}

TEST_F(RrcFixture, PromotionFromFachIsFaster) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  rrc.end_transfer();
  sim.run_until(sim.now() + config.t1 + 0.5);  // now FACH
  ASSERT_EQ(rrc.state(), RrcState::kFach);

  const Seconds requested = sim.now();
  Seconds ready_at = -1;
  rrc.request_channel([&] { ready_at = sim.now(); });
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), config.fach_to_dch_power);
  sim.run_until(requested + config.fach_to_dch_delay + 0.1);
  EXPECT_DOUBLE_EQ(ready_at, requested + config.fach_to_dch_delay);
  EXPECT_EQ(rrc.fach_promotions(), 1);
}

TEST_F(RrcFixture, TouchResetsTimers) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  rrc.end_transfer();
  const Seconds end = sim.now();
  sim.run_until(end + config.t1 - 0.5);
  rrc.touch();  // resets T1
  sim.run_until(end + config.t1 + 1.0);
  EXPECT_EQ(rrc.state(), RrcState::kDch);
}

TEST_F(RrcFixture, ForceIdleReleasesAfterSignalling) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  rrc.end_transfer();
  const Seconds release_start = sim.now();
  EXPECT_TRUE(rrc.force_idle());
  EXPECT_EQ(rrc.phase(), RadioPhase::kReleasing);
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), config.release_power);
  sim.run_until(release_start + config.release_delay + 0.1);
  EXPECT_EQ(rrc.state(), RrcState::kIdle);
  EXPECT_EQ(rrc.forced_releases(), 1);
}

TEST_F(RrcFixture, ForceIdleRefusedDuringTransferOrIdle) {
  RrcMachine rrc = make();
  EXPECT_FALSE(rrc.force_idle());  // already idle
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  EXPECT_FALSE(rrc.force_idle());  // transfer active
  rrc.end_transfer();
  EXPECT_TRUE(rrc.force_idle());
  EXPECT_FALSE(rrc.force_idle());  // already releasing
}

TEST_F(RrcFixture, RequestDuringReleaseRepromotesAfterwards) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  rrc.end_transfer();
  const Seconds release_start = sim.now();
  rrc.force_idle();
  Seconds ready_at = -1;
  rrc.request_channel([&] { ready_at = sim.now(); });
  sim.run_until(release_start + config.release_delay + config.idle_to_dch_delay + 0.5);
  EXPECT_DOUBLE_EQ(ready_at,
                   release_start + config.release_delay + config.idle_to_dch_delay);
}

TEST_F(RrcFixture, MisuseThrows) {
  RrcMachine rrc = make();
  EXPECT_THROW(rrc.begin_transfer(), std::logic_error);  // not on DCH
  EXPECT_THROW(rrc.end_transfer(), std::logic_error);    // nothing active
  EXPECT_THROW(rrc.request_channel(nullptr), std::invalid_argument);
}

TEST_F(RrcFixture, ResidencyAccountingSumsToElapsed) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(5.0);
  rrc.end_transfer();
  sim.run_until(60.0);
  const Seconds total = rrc.time_in(RrcState::kIdle) +
                        rrc.time_in(RrcState::kFach) +
                        rrc.time_in(RrcState::kDch);
  EXPECT_NEAR(total, 60.0, 1e-9);
  EXPECT_GT(rrc.time_in(RrcState::kFach), config.t2 - 0.1);
}

TEST_F(RrcFixture, EnergyMatchesHandComputedCycle) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run();
  const Seconds ready = config.idle_to_dch_delay;
  rrc.end_transfer();  // transfer of zero length: DCH reached, ends instantly
  sim.run_until(ready + config.t1 + config.t2 + 5.0);
  const Joules expected = config.idle_to_dch_power * config.idle_to_dch_delay +
                          power.dch_no_transfer * config.t1 +
                          power.fach * config.t2 + power.idle * 5.0;
  EXPECT_NEAR(rrc.power().energy(0, ready + config.t1 + config.t2 + 5.0),
              expected, 1e-6);
}

TEST_F(RrcFixture, SmallTransferRidesFachAndResetsT2) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  rrc.end_transfer();
  sim.run_until(sim.now() + config.t1 + 0.5);
  ASSERT_EQ(rrc.state(), RrcState::kFach);

  const Seconds fach_mark = sim.now();
  bool done = false;
  EXPECT_TRUE(rrc.small_transfer(300, [&] { done = true; }));
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.fach_transfer);
  sim.run_until(fach_mark + 300.0 / 300.0 + 0.01);
  EXPECT_TRUE(done);
  EXPECT_EQ(rrc.small_transfers(), 1);
  EXPECT_DOUBLE_EQ(rrc.power().current_power(), power.fach);
  // T2 was reset by the shared-channel activity: still FACH at the time the
  // original T2 would have fired.
  sim.run_until(fach_mark + config.t2 + 0.5);
  EXPECT_EQ(rrc.state(), RrcState::kFach);
  sim.run_until(fach_mark + 1.0 + config.t2 + 0.5);
  EXPECT_EQ(rrc.state(), RrcState::kIdle);
}

TEST_F(RrcFixture, SmallTransferRefusedOffFachOrOversized) {
  RrcMachine rrc = make();
  EXPECT_FALSE(rrc.small_transfer(100, [] {}));  // IDLE
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  EXPECT_FALSE(rrc.small_transfer(100, [] {}));  // DCH
  rrc.end_transfer();
  sim.run_until(sim.now() + config.t1 + 0.5);
  ASSERT_EQ(rrc.state(), RrcState::kFach);
  EXPECT_FALSE(rrc.small_transfer(config.fach_data_threshold + 1, [] {}));
  EXPECT_THROW(rrc.small_transfer(10, nullptr), std::invalid_argument);
}

TEST_F(RrcFixture, OnlyOneSharedChannelSlot) {
  RrcMachine rrc = make();
  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.1);
  rrc.end_transfer();
  sim.run_until(sim.now() + config.t1 + 0.5);
  ASSERT_EQ(rrc.state(), RrcState::kFach);
  EXPECT_TRUE(rrc.small_transfer(300, [] {}));
  EXPECT_FALSE(rrc.small_transfer(300, [] {}));  // slot busy
  sim.run_until(sim.now() + 1.5);
  EXPECT_TRUE(rrc.small_transfer(300, [] {}));  // freed
}

// Property sweep: timers compose for arbitrary configurations.
struct TimerParams {
  double t1;
  double t2;
};

class RrcTimerSweep : public ::testing::TestWithParam<TimerParams> {};

TEST_P(RrcTimerSweep, DemotionTimesFollowConfig) {
  sim::Simulator sim;
  RrcConfig config;
  config.t1 = GetParam().t1;
  config.t2 = GetParam().t2;
  RadioPowerModel power;
  RrcMachine rrc(sim, config, power);

  rrc.request_channel([&] { rrc.begin_transfer(); });
  sim.run_until(config.idle_to_dch_delay + 0.01);
  rrc.end_transfer();
  const Seconds end = sim.now();

  sim.run_until(end + config.t1 - 0.01);
  EXPECT_EQ(rrc.state(), RrcState::kDch);
  sim.run_until(end + config.t1 + 0.01);
  EXPECT_EQ(rrc.state(), RrcState::kFach);
  sim.run_until(end + config.t1 + config.t2 - 0.01);
  EXPECT_EQ(rrc.state(), RrcState::kFach);
  sim.run_until(end + config.t1 + config.t2 + 0.01);
  EXPECT_EQ(rrc.state(), RrcState::kIdle);
}

INSTANTIATE_TEST_SUITE_P(TimerGrid, RrcTimerSweep,
                         ::testing::Values(TimerParams{1, 2}, TimerParams{4, 15},
                                           TimerParams{2, 30}, TimerParams{8, 8},
                                           TimerParams{0.5, 60},
                                           TimerParams{10, 1}));

}  // namespace
}  // namespace eab::radio
