#include "radio/profiles.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "corpus/page_spec.hpp"

namespace eab::radio {
namespace {

TEST(Profiles, UmtsIsTheLibraryDefault) {
  const RadioProfile umts = umts_profile();
  EXPECT_STREQ(umts.name, "UMTS (3G)");
  EXPECT_DOUBLE_EQ(umts.rrc.t1, RrcConfig{}.t1);
  EXPECT_DOUBLE_EQ(umts.power.fach, RadioPowerModel{}.fach);
  EXPECT_DOUBLE_EQ(umts.link.dch_bandwidth, LinkConfig{}.dch_bandwidth);
}

TEST(Profiles, LteIsFasterInEveryControlPlaneDimension) {
  const RadioProfile umts = umts_profile();
  const RadioProfile lte = lte_profile();
  EXPECT_LT(lte.rrc.idle_to_dch_delay, umts.rrc.idle_to_dch_delay);
  EXPECT_LT(lte.rrc.fach_to_dch_delay, umts.rrc.fach_to_dch_delay);
  EXPECT_LT(lte.rrc.t1 + lte.rrc.t2, umts.rrc.t1 + umts.rrc.t2);
  EXPECT_GT(lte.link.dch_bandwidth, umts.link.dch_bandwidth * 4);
  EXPECT_LT(lte.link.rtt, umts.link.rtt);
}

TEST(Profiles, LteHasNoSharedChannelDataPath) {
  sim::Simulator sim;
  const RadioProfile lte = lte_profile();
  RrcMachine rrc(sim, lte.rrc, lte.power);
  rrc.request_channel([&] {
    rrc.begin_transfer();
    rrc.end_transfer();
  });
  sim.run_until(lte.rrc.idle_to_dch_delay + lte.rrc.t1 + 0.2);
  ASSERT_EQ(rrc.state(), RrcState::kFach);  // DRX tail
  EXPECT_FALSE(rrc.small_transfer(100, [] {}));
}

TEST(Profiles, PagesLoadFasterOnLte) {
  core::StackConfig umts_cfg =
      core::StackConfig::for_mode(browser::PipelineMode::kOriginal);
  core::StackConfig lte_cfg = umts_cfg;
  const RadioProfile lte = lte_profile();
  lte_cfg.rrc = lte.rrc;
  lte_cfg.power = lte.power;
  lte_cfg.link = lte.link;

  const auto spec = corpus::m_cnn_spec();
  const auto on_umts = core::run_single_load(spec, umts_cfg);
  const auto on_lte = core::run_single_load(spec, lte_cfg);
  EXPECT_LT(on_lte.metrics.total_time(), on_umts.metrics.total_time());
  EXPECT_LT(on_lte.energy.with_reading_j, on_umts.energy.with_reading_j);
  // Same page either way.
  EXPECT_EQ(on_lte.dom_signature, on_umts.dom_signature);
}

TEST(Profiles, TechniqueStillWinsOnLte) {
  const RadioProfile lte = lte_profile();
  core::StackConfig orig_cfg =
      core::StackConfig::for_mode(browser::PipelineMode::kOriginal);
  core::StackConfig ea_cfg =
      core::StackConfig::for_mode(browser::PipelineMode::kEnergyAware);
  for (core::StackConfig* config : {&orig_cfg, &ea_cfg}) {
    config->rrc = lte.rrc;
    config->power = lte.power;
    config->link = lte.link;
  }
  const auto spec = corpus::espn_sports_spec();
  const auto orig = core::run_single_load(spec, orig_cfg);
  const auto ea = core::run_single_load(spec, ea_cfg);
  EXPECT_LT(ea.energy.with_reading_j, orig.energy.with_reading_j);
  // ...but the absolute joules recovered shrink vs UMTS.
  const auto umts_orig = core::run_single_load(
      spec, core::StackConfig::for_mode(browser::PipelineMode::kOriginal));
  const auto umts_ea = core::run_single_load(
      spec, core::StackConfig::for_mode(browser::PipelineMode::kEnergyAware));
  const Joules saved_umts = umts_orig.energy.with_reading_j - umts_ea.energy.with_reading_j;
  const Joules saved_lte = orig.energy.with_reading_j - ea.energy.with_reading_j;
  EXPECT_LT(saved_lte, saved_umts);
}

TEST(Proxy, BundlesTheWholePageIntoOneStream) {
  const auto spec = corpus::espn_sports_spec();
  const auto config =
      core::StackConfig::for_mode(browser::PipelineMode::kOriginal);
  const auto proxy = core::run_proxy_load(spec, config);
  const auto direct = core::run_single_load(spec, config);

  // Compressed bundle: fewer bytes than the raw page.
  EXPECT_LT(proxy.bundle_bytes, direct.bytes_fetched);
  EXPECT_GT(proxy.bundle_bytes, direct.bytes_fetched / 4);
  // One grouped stream beats even the reorganized pipeline on time/energy.
  EXPECT_LT(proxy.total_time, direct.metrics.total_time());
  EXPECT_LT(proxy.energy.with_reading_j, direct.energy.with_reading_j);
  EXPECT_GT(proxy.total_time, 0.0);
  EXPECT_GE(proxy.total_time, proxy.transmission_time);
}

TEST(Proxy, DeterministicAndSeedSensitive) {
  const auto spec = corpus::m_cnn_spec();
  const auto config =
      core::StackConfig::for_mode(browser::PipelineMode::kOriginal);
  const auto a = core::run_proxy_load(spec, config, {}, 20.0, 5);
  const auto b = core::run_proxy_load(spec, config, {}, 20.0, 5);
  EXPECT_DOUBLE_EQ(a.energy.with_reading_j, b.energy.with_reading_j);
  EXPECT_EQ(a.bundle_bytes, b.bundle_bytes);
}

TEST(Proxy, CompressionRatioScalesBundle) {
  const auto spec = corpus::m_cnn_spec();
  const auto config =
      core::StackConfig::for_mode(browser::PipelineMode::kOriginal);
  core::ProxyConfig heavy;
  heavy.compression_ratio = 0.8;
  core::ProxyConfig light;
  light.compression_ratio = 0.2;
  const auto big = core::run_proxy_load(spec, config, heavy);
  const auto small = core::run_proxy_load(spec, config, light);
  EXPECT_GT(big.bundle_bytes, small.bundle_bytes * 3);
  EXPECT_GE(big.total_time, small.total_time);
}

}  // namespace
}  // namespace eab::radio
