#include "trace/reading_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace eab::trace {
namespace {

/// Fabricates a page library with topic-distinct features, mirroring what
/// build-from-browser measurement produces, but fast and fully controlled.
std::vector<PageRecord> fabricated_library(std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<PageRecord> records;
  for (int topic = 0; topic < corpus::kTopicCount; ++topic) {
    for (int variant = 0; variant < 6; ++variant) {
      for (const bool mobile : {true, false}) {
        PageRecord record;
        record.spec.site = "site" + std::to_string(topic) + "v" +
                           std::to_string(variant) + (mobile ? "m" : "f");
        record.spec.topic = static_cast<corpus::Topic>(topic);
        record.spec.mobile = mobile;
        auto& f = record.features;
        const double scale = mobile ? 1.0 : 3.0;
        f.transmission_time = rng.uniform(4, 8) * scale;
        f.page_size_kb = rng.uniform(30, 80) * scale;
        f.object_count = rng.uniform(8, 15) * scale;
        f.js_file_count = mobile ? 2 : 4;
        f.figure_count = rng.uniform(5, 12) * scale;
        f.figure_size_kb = f.figure_count * rng.uniform(5, 15);
        f.js_running_time = rng.uniform(0.2, 1.5) * scale;
        f.secondary_url_count = rng.uniform(20, 90);
        f.page_height = rng.uniform(800, 2200) * scale;
        f.page_width = mobile ? 320 : 980;
        records.push_back(std::move(record));
      }
    }
  }
  return records;
}

TEST(TraceGenerator, ValidatesInput) {
  EXPECT_THROW(TraceGenerator({}, TraceConfig{}, 1), std::invalid_argument);
  TraceConfig config;
  config.users = 0;
  EXPECT_THROW(TraceGenerator(fabricated_library(), config, 1),
               std::invalid_argument);
}

TEST(TraceGenerator, UsersGetDistinctButAnchoredInterests) {
  TraceGenerator generator(fabricated_library(), TraceConfig{}, 3);
  const auto& users = generator.users();
  ASSERT_EQ(users.size(), 40u);
  const auto base = population_interest();
  // Per-topic population mean is respected...
  for (std::size_t t = 0; t < base.size(); ++t) {
    std::vector<double> interests;
    for (const auto& user : users) interests.push_back(user.interest[t]);
    EXPECT_NEAR(mean(interests), base[t], 0.08) << t;
  }
  // ...and users are not clones.
  EXPECT_NE(users[0].interest, users[1].interest);
}

TEST(TraceGenerator, DeterministicForSeed) {
  TraceGenerator a(fabricated_library(), TraceConfig{}, 5);
  TraceGenerator b(fabricated_library(), TraceConfig{}, 5);
  const auto views_a = a.generate();
  const auto views_b = b.generate();
  ASSERT_EQ(views_a.size(), views_b.size());
  for (std::size_t i = 0; i < views_a.size(); ++i) {
    EXPECT_EQ(views_a[i].page_index, views_b[i].page_index);
    EXPECT_DOUBLE_EQ(views_a[i].reading_time, views_b[i].reading_time);
  }
}

TEST(TraceGenerator, EveryUserBrowsesLongEnough) {
  TraceConfig config;
  config.users = 10;
  TraceGenerator generator(fabricated_library(), config, 3);
  const auto views = generator.generate();
  std::vector<double> browsed(10, 0.0);
  for (const auto& view : views) {
    const auto& record = generator.records()[view.page_index];
    browsed[static_cast<std::size_t>(view.user)] +=
        record.features.transmission_time + 6.0 + view.reading_time;
  }
  for (double total : browsed) EXPECT_GE(total, config.browsing_per_user);
}

TEST(TraceGenerator, Fig7AnchorsHold) {
  TraceGenerator generator(fabricated_library(), TraceConfig{}, 3);
  const auto views = generator.generate();
  std::vector<double> readings;
  for (const auto& view : views) readings.push_back(view.reading_time);

  // Paper Fig 7: ~30 % < 2 s, ~53 % < 9 s, ~68 % < 20 s (tolerances cover
  // sampling noise and the library's feature draw).
  EXPECT_NEAR(empirical_cdf_at(readings, 2.0), 0.30, 0.05);
  // The mid-anchor is the loosest: it shifts with the library's feature
  // distribution, and this test's library is fabricated rather than
  // browser-measured (the Fig 7 bench pins the measured-library CDF).
  EXPECT_NEAR(empirical_cdf_at(readings, 9.0), 0.53, 0.09);
  EXPECT_NEAR(empirical_cdf_at(readings, 20.0), 0.68, 0.08);
}

TEST(TraceGenerator, Fig7AnchorsHoldAcrossSeeds) {
  for (const std::uint64_t seed : {11ull, 77ull, 123ull}) {
    TraceConfig config;
    config.users = 25;
    TraceGenerator generator(fabricated_library(seed), config, seed);
    const auto views = generator.generate();
    std::vector<double> readings;
    for (const auto& view : views) readings.push_back(view.reading_time);
    EXPECT_NEAR(empirical_cdf_at(readings, 2.0), 0.30, 0.06) << seed;
    EXPECT_NEAR(empirical_cdf_at(readings, 20.0), 0.68, 0.08) << seed;
  }
}

TEST(TraceGenerator, NoReadingExceedsTenMinutes) {
  TraceGenerator generator(fabricated_library(), TraceConfig{}, 3);
  for (const auto& view : generator.generate()) {
    EXPECT_GT(view.reading_time, 0.0);
    EXPECT_LE(view.reading_time, 600.0);
  }
}

TEST(TraceGenerator, Table4NoLinearSignal) {
  TraceGenerator generator(fabricated_library(), TraceConfig{}, 3);
  const auto views = generator.generate();
  const auto data = to_dataset(views, generator.records());
  for (std::size_t f = 0; f < browser::PageFeatures::kCount; ++f) {
    const double r = pearson(data.column(f), data.targets());
    EXPECT_LE(std::abs(r), 0.12) << "feature " << f;
  }
}

TEST(TraceGenerator, InterestDrivesEngagedReadingTime) {
  const auto library = fabricated_library();
  TraceGenerator generator(library, TraceConfig{}, 3);
  UserProfile enthusiast;
  enthusiast.interest.fill(0.95);
  UserProfile indifferent;
  indifferent.interest.fill(0.10);

  Rng rng(5);
  auto mean_reading = [&](const UserProfile& user) {
    double sum = 0;
    const int n = 3000;
    for (int i = 0; i < n; ++i) {
      sum += generator.sample_reading_time(user, library[0], rng);
    }
    return sum / n;
  };
  EXPECT_GT(mean_reading(enthusiast), mean_reading(indifferent) * 2.0);
}

TEST(ToDataset, FilterExcludesBounces) {
  TraceGenerator generator(fabricated_library(), TraceConfig{}, 3);
  const auto views = generator.generate();
  const auto all = to_dataset(views, generator.records());
  const auto filtered = to_dataset(views, generator.records(), 2.0);
  EXPECT_EQ(all.size(), views.size());
  EXPECT_LT(filtered.size(), all.size());
  for (double y : filtered.targets()) EXPECT_GE(y, 2.0);
  // Roughly the bounce mass is gone.
  EXPECT_NEAR(static_cast<double>(filtered.size()) / all.size(), 0.70, 0.06);
}

TEST(ToDataset, LogVariantTransformsTargets) {
  TraceGenerator generator(fabricated_library(), TraceConfig{}, 3);
  const auto views = generator.generate();
  const auto raw = to_dataset(views, generator.records(), 2.0);
  const auto logged = to_log_dataset(views, generator.records(), 2.0);
  ASSERT_EQ(raw.size(), logged.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_NEAR(logged.target(i), std::log(raw.target(i)), 1e-12);
  }
  EXPECT_EQ(logged.feature_names(), browser::PageFeatures::names());
}

TEST(PopulationInterest, MatchesPaperNarrative) {
  const auto interest = population_interest();
  // Section 4.3.4: a user may spend more time on games than finance.
  EXPECT_GT(interest[static_cast<int>(corpus::Topic::kGames)],
            interest[static_cast<int>(corpus::Topic::kFinance)]);
}

}  // namespace
}  // namespace eab::trace
