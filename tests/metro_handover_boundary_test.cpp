// Handover robustness: force a DCH hard handover (the production
// metro::move_ue, not a re-implementation) at every fetch-settle boundary
// of a reference session — plus idle instants and a handover into a cell
// that is dark for the whole run — under both pipelines, and assert the
// moved session leaves no residue in EITHER cell: no live flows, no leaked
// RRC transfer markers, a settled grant ledger on both sides, and a trace
// the cross-layer auditor accepts (handover signalling energy included).
// Mirrors radio_outage_boundary_test.cpp, which does the same for RLF.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cell/cell.hpp"
#include "cell/cell_sim.hpp"
#include "core/scenario.hpp"
#include "corpus/page_spec.hpp"
#include "metro/metro.hpp"
#include "obs/audit.hpp"
#include "obs/trace.hpp"
#include "radio/rrc.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace eab::metro {
namespace {

cell::CellConfig rig_config(browser::PipelineMode mode, std::uint64_t seed,
                            bool dark) {
  cell::CellConfig config;
  config.per_ue = core::ScenarioBuilder(mode).build();
  config.per_ue.stack.trace = true;
  config.specs = {corpus::mobile_benchmark().front()};
  config.users = 1;
  config.channels = 1;
  config.mean_think_time = 5.0;
  config.horizon = 60.0;
  config.cell_seed = seed;
  if (dark) {
    // One window covering the whole run.  The knob is set on BOTH cell
    // configs (as run_metro's shared template would) so the UE gets its
    // outage injector; only the target cell actually schedules the window.
    config.cell_outage_count = 1;
    config.cell_outage_start = 0.0;
    config.cell_outage_duration = 3600.0;
    config.cell_outage_period = 7200.0;
  }
  return config;
}

/// Two cells, one UE homed in cell 0, driven by the normal cell session
/// process — the minimal metro.
struct MetroRig {
  cell::CellConfig config0;
  cell::CellConfig config1;
  sim::Simulator sim;
  cell::CellSim cell0;
  cell::CellSim cell1;
  std::unique_ptr<cell::CellUe> ue;
  std::vector<MoveOutcome> outcomes;

  explicit MetroRig(browser::PipelineMode mode, bool dark_target = false)
      : config0(rig_config(mode, 11, dark_target)),
        config1(rig_config(mode, 12, dark_target)),
        cell0(sim, config0, 0, 0),
        cell1(sim, config1, 1, 0) {
    ue = cell0.make_ue(0, derive_seed(config0.cell_seed, 0));
    cell0.schedule_first_arrival(*ue);
    if (dark_target) cell1.schedule_cell_outages();
  }

  /// Schedules a production move to the other cell at `t`.
  void move_at(Seconds t, HandoverPolicy policy = HandoverPolicy::kHard) {
    sim.schedule_at(t, [this, policy] {
      cell::CellSim& dst = ue->cell == &cell0 ? cell1 : cell0;
      outcomes.push_back(move_ue(*ue, dst, policy));
    });
  }

  int count(MoveOutcome outcome) const {
    return static_cast<int>(
        std::count(outcomes.begin(), outcomes.end(), outcome));
  }
};

/// Residue-free in both cells, books closed, audit-clean.
void expect_clean(MetroRig& rig, const char* context) {
  EXPECT_EQ(rig.ue->grant, cell::Grant::kFree) << context;
  EXPECT_EQ(rig.ue->link.active_flows(), 0u) << context;
  EXPECT_EQ(rig.ue->rrc.active_transfers(), 0) << context;
  EXPECT_EQ(rig.ue->stats.offered,
            rig.ue->stats.admitted + rig.ue->stats.dropped)
      << context;
  EXPECT_EQ(rig.ue->stats.admitted,
            rig.ue->stats.completed + rig.ue->stats.aborted)
      << context;

  const Seconds t_end = rig.sim.now();
  const cell::CellResult r0 = rig.cell0.finalize(t_end, rig.sim.fired_count());
  const cell::CellResult r1 = rig.cell1.finalize(t_end, rig.sim.fired_count());
  EXPECT_EQ(r0.leaked_flows + r1.leaked_flows, 0u) << context;
  EXPECT_EQ(r0.grant_overcommits, 0u) << context;
  EXPECT_EQ(r1.grant_overcommits, 0u) << context;

  obs::AuditInputs inputs;
  inputs.rrc = rig.config0.per_ue.stack.rrc;
  inputs.power = rig.config0.per_ue.stack.power;
  inputs.max_retries = rig.config0.per_ue.stack.retry.max_retries;
  inputs.radio_energy = rig.ue->rrc.power().energy(0.0, t_end);
  inputs.t_end = t_end;
  ASSERT_NE(rig.ue->trace, nullptr) << context;
  const obs::AuditReport report =
      obs::TraceAuditor().audit(*rig.ue->trace, inputs);
  EXPECT_TRUE(report.ok()) << context << "\n" << report.summary();
}

/// Move instants for one mode: a hair after every distinct fetch-settle of
/// a clean reference run, one likely-idle early instant, and one instant
/// past the reference workload.
std::vector<Seconds> boundaries_for(browser::PipelineMode mode) {
  MetroRig reference(mode);
  reference.sim.run();
  std::vector<Seconds> times = {0.5, reference.sim.now() * 0.5};
  for (const obs::TraceEvent& e : reference.ue->trace->events()) {
    if (e.kind == obs::TraceKind::kHttpFetchSettled) {
      times.push_back(e.t + 1e-6);
    }
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

TEST(MetroHandoverBoundaryTest, MoveAtEveryFetchSettleLeavesNoResidue) {
  for (const browser::PipelineMode mode :
       {browser::PipelineMode::kOriginal,
        browser::PipelineMode::kEnergyAware}) {
    const std::vector<Seconds> boundaries = boundaries_for(mode);
    ASSERT_GT(boundaries.size(), 2u);
    int handovers = 0;
    for (std::size_t i = 0; i < boundaries.size(); ++i) {
      MetroRig rig(mode);
      rig.move_at(boundaries[i]);
      rig.sim.run();
      ASSERT_EQ(rig.outcomes.size(), 1u);
      handovers += rig.count(MoveOutcome::kHandover);
      const std::string context =
          std::string(mode == browser::PipelineMode::kOriginal ? "orig"
                                                               : "ea") +
          " boundary " + std::to_string(i);
      expect_clean(rig, context.c_str());
      if (rig.outcomes[0] == MoveOutcome::kHandover) {
        // A real hard handover must run the signalling exchange exactly
        // once and land the UE in the other cell with its grant settled.
        EXPECT_EQ(rig.ue->rrc.handovers(), 1) << context;
        EXPECT_EQ(rig.ue->cell, &rig.cell1) << context;
      }
    }
    // The settle boundaries catch the radio in stable DCH: the sweep must
    // actually exercise the handover path, not just reselections.
    EXPECT_GT(handovers, 0) << "mode=" << static_cast<int>(mode);
  }
}

TEST(MetroHandoverBoundaryTest, InstantPolicySkipsTheSignallingExchange) {
  for (const browser::PipelineMode mode :
       {browser::PipelineMode::kOriginal,
        browser::PipelineMode::kEnergyAware}) {
    const std::vector<Seconds> boundaries = boundaries_for(mode);
    int handovers = 0;
    for (const Seconds at : boundaries) {
      MetroRig rig(mode);
      rig.move_at(at, HandoverPolicy::kInstant);
      rig.sim.run();
      handovers += rig.count(MoveOutcome::kHandover);
      EXPECT_EQ(rig.ue->rrc.handovers(), 0);
      for (const obs::TraceEvent& e : rig.ue->trace->events()) {
        EXPECT_NE(e.kind, obs::TraceKind::kRrcHandoverStart);
      }
      expect_clean(rig, "instant");
    }
    EXPECT_GT(handovers, 0);
  }
}

TEST(MetroHandoverBoundaryTest, HandoverIntoDarkCellDropsTheSession) {
  for (const browser::PipelineMode mode :
       {browser::PipelineMode::kOriginal,
        browser::PipelineMode::kEnergyAware}) {
    const std::vector<Seconds> boundaries = boundaries_for(mode);
    int drops = 0;
    for (const Seconds at : boundaries) {
      MetroRig rig(mode, /*dark_target=*/true);
      rig.move_at(at);
      rig.sim.run();
      ASSERT_EQ(rig.outcomes.size(), 1u);
      // The target never has a free grant (it is dark), so a DCH mover is
      // refused and its load dies at the boundary; IDLE movers re-camp
      // into the darkness and lose coverage instead.
      EXPECT_EQ(rig.count(MoveOutcome::kHandover), 0);
      drops += rig.count(MoveOutcome::kHandoverDrop);
      EXPECT_EQ(rig.ue->cell, &rig.cell1);
      EXPECT_EQ(rig.ue->grant, cell::Grant::kFree);
      EXPECT_EQ(rig.ue->link.active_flows(), 0u);
      EXPECT_EQ(rig.ue->rrc.active_transfers(), 0);
      if (rig.outcomes[0] == MoveOutcome::kHandoverDrop) {
        EXPECT_GT(rig.ue->stats.aborted, 0);
      }
    }
    EXPECT_GT(drops, 0) << "mode=" << static_cast<int>(mode);
  }
}

}  // namespace
}  // namespace eab::metro
