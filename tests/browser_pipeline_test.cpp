#include "browser/pipeline.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "corpus/generator.hpp"
#include "corpus/page_spec.hpp"

namespace eab::browser {
namespace {

/// A full measurement stack around one WebServer, for direct pipeline tests
/// (including ones that deliberately break the hosted content).
struct Stack {
  sim::Simulator sim;
  radio::RrcConfig rrc_config;
  radio::RadioPowerModel power;
  radio::LinkConfig link_config;
  radio::RrcMachine rrc{sim, rrc_config, power};
  net::SharedLink link{sim, link_config.dch_bandwidth};
  net::WebServer server;
  net::HttpClient client{sim, server, link, rrc, link_config};
  CpuScheduler cpu{sim, power.cpu_busy_extra};

  std::optional<LoadMetrics> load(const std::string& url, PipelineConfig config,
                                  PageLoad** out = nullptr) {
    auto page = std::make_unique<PageLoad>(sim, client, cpu, config, 1);
    if (out) *out = page.get();
    std::optional<LoadMetrics> metrics;
    page->start(url, [&](const LoadMetrics& m) { metrics = m; });
    sim.run();
    loads.push_back(std::move(page));
    return metrics;
  }

  std::vector<std::unique_ptr<PageLoad>> loads;
};

PipelineConfig config_for(PipelineMode mode, bool mobile) {
  PipelineConfig config;
  config.mode = mode;
  config.mobile_page = mobile;
  return config;
}

TEST(Pipeline, LoadsSimplePageEndToEnd) {
  Stack stack;
  net::Resource page;
  page.url = "http://s/index.html";
  page.kind = net::ResourceKind::kHtml;
  page.body = "<html><body><p>hello</p><img src='http://s/a.jpg'></body></html>";
  page.size = page.body.size();
  stack.server.host(page);
  net::Resource image;
  image.url = "http://s/a.jpg";
  image.kind = net::ResourceKind::kImage;
  image.size = kilobytes(5);
  stack.server.host(image);

  PageLoad* load = nullptr;
  const auto metrics = stack.load("http://s/index.html",
                                  config_for(PipelineMode::kOriginal, false),
                                  &load);
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->objects_fetched, 2);
  EXPECT_EQ(metrics->bytes_fetched, page.size + image.size);
  EXPECT_GT(metrics->final_display, metrics->transmission_done);
  EXPECT_EQ(load->dom().find_all("img").size(), 1u);
}

// The paper's Fig 5 invariant: both pipelines end with the same DOM and the
// same downloaded bytes — only the schedule differs.  Checked across the
// whole Table 3 benchmark.
class PipelineEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PipelineEquivalence, SameFinalDomSameBytesFasterTx) {
  const auto mobile = corpus::mobile_benchmark();
  const auto full = corpus::full_benchmark();
  const corpus::PageSpec& spec = GetParam() < 10
                                     ? mobile[static_cast<std::size_t>(GetParam())]
                                     : full[static_cast<std::size_t>(GetParam() - 10)];

  auto run = [&](PipelineMode mode) {
    Stack stack;
    corpus::PageGenerator generator(7);
    const std::string url = generator.host_page(spec, stack.server);
    PageLoad* load = nullptr;
    const auto metrics =
        stack.load(url, config_for(mode, spec.mobile), &load);
    EXPECT_TRUE(metrics.has_value());
    return std::tuple<std::string, Bytes, Seconds, int>(
        load->dom().signature(), metrics->bytes_fetched,
        metrics->transmission_time(), metrics->objects_fetched);
  };

  const auto [dom_orig, bytes_orig, tx_orig, objects_orig] =
      run(PipelineMode::kOriginal);
  const auto [dom_ea, bytes_ea, tx_ea, objects_ea] =
      run(PipelineMode::kEnergyAware);

  EXPECT_EQ(dom_orig, dom_ea) << spec.site;
  EXPECT_EQ(bytes_orig, bytes_ea) << spec.site;
  EXPECT_EQ(objects_orig, objects_ea) << spec.site;
  EXPECT_LE(tx_ea, tx_orig + 1e-9) << spec.site;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarkPages, PipelineEquivalence,
                         ::testing::Range(0, 20));

TEST(Pipeline, EnergyAwareDefersLayoutWork) {
  Stack orig_stack;
  Stack ea_stack;
  corpus::PageGenerator generator(7);
  const corpus::PageSpec spec = corpus::espn_sports_spec();
  const std::string url_a = generator.host_page(spec, orig_stack.server);
  const std::string url_b = generator.host_page(spec, ea_stack.server);

  const auto orig =
      orig_stack.load(url_a, config_for(PipelineMode::kOriginal, false));
  const auto ea =
      ea_stack.load(url_b, config_for(PipelineMode::kEnergyAware, false));
  // Energy-aware pays for CSS parse + decode after the last byte.
  EXPECT_GT(ea->layout_tail_time(), orig->layout_tail_time() * 0.5);
  // Original draws intermediate displays, energy-aware exactly one.
  EXPECT_GE(orig->intermediate_displays, 2);
  EXPECT_EQ(ea->intermediate_displays, 1);
  EXPECT_LT(ea->first_display, orig->first_display);
}

TEST(Pipeline, MobileEnergyAwareSkipsIntermediateDisplay) {
  Stack stack;
  corpus::PageGenerator generator(7);
  const corpus::PageSpec spec = corpus::m_cnn_spec();
  const std::string url = generator.host_page(spec, stack.server);
  const auto metrics =
      stack.load(url, config_for(PipelineMode::kEnergyAware, true));
  EXPECT_EQ(metrics->intermediate_displays, 0);
  EXPECT_DOUBLE_EQ(metrics->first_display, metrics->final_display);
}

TEST(Pipeline, TransmissionCompleteHookFiresBeforeLayout) {
  Stack stack;
  corpus::PageGenerator generator(7);
  const std::string url =
      generator.host_page(corpus::m_cnn_spec(), stack.server);

  auto page = std::make_unique<PageLoad>(
      stack.sim, stack.client, stack.cpu,
      config_for(PipelineMode::kEnergyAware, true), 1);
  Seconds hook_at = -1;
  int hook_count = 0;
  page->set_on_transmission_complete([&] {
    hook_at = stack.sim.now();
    ++hook_count;
  });
  std::optional<LoadMetrics> metrics;
  page->start(url, [&](const LoadMetrics& m) { metrics = m; });
  stack.sim.run();

  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(hook_count, 1);
  EXPECT_GE(hook_at, metrics->transmission_done);
  EXPECT_LE(hook_at, metrics->final_display);
}

TEST(Pipeline, MissingResourcesDoNotHangTheLoad) {
  Stack stack;
  net::Resource page;
  page.url = "http://s/index.html";
  page.kind = net::ResourceKind::kHtml;
  page.body =
      "<link rel='stylesheet' href='http://s/gone.css'>"
      "<img src='http://s/gone.jpg'><p>content</p>"
      "<script src='http://s/gone.js'></script>";
  page.size = page.body.size();
  stack.server.host(page);

  for (const PipelineMode mode :
       {PipelineMode::kOriginal, PipelineMode::kEnergyAware}) {
    Stack fresh;
    fresh.server.host(page);
    const auto metrics = fresh.load("http://s/index.html",
                                    config_for(mode, false));
    ASSERT_TRUE(metrics.has_value());
    EXPECT_EQ(metrics->objects_fetched, 1);  // only the HTML existed
  }
}

TEST(Pipeline, BrokenScriptDoesNotWedgeTheLoad) {
  Stack stack;
  net::Resource page;
  page.url = "http://s/index.html";
  page.kind = net::ResourceKind::kHtml;
  page.body =
      "<script>this is not ((( valid js</script>"
      "<script>loadImage('http://s/ok.jpg');</script><p>x</p>";
  page.size = page.body.size();
  stack.server.host(page);
  net::Resource image;
  image.url = "http://s/ok.jpg";
  image.kind = net::ResourceKind::kImage;
  image.size = 1000;
  stack.server.host(image);

  const auto metrics =
      stack.load("http://s/index.html", config_for(PipelineMode::kEnergyAware, false));
  ASSERT_TRUE(metrics.has_value());
  // The second script still ran and fetched its image.
  EXPECT_EQ(metrics->objects_fetched, 2);
}

TEST(Pipeline, MalformedHtmlAndCssComplete) {
  Stack stack;
  net::Resource page;
  page.url = "http://s/index.html";
  page.kind = net::ResourceKind::kHtml;
  page.body = "<div><p>unclosed <b>everything<link rel='stylesheet' "
              "href='http://s/b.css'>";
  page.size = page.body.size();
  stack.server.host(page);
  net::Resource css;
  css.url = "http://s/b.css";
  css.kind = net::ResourceKind::kCss;
  css.body = ".a { color: ; url( } @media {";
  css.size = css.body.size();
  stack.server.host(css);

  for (const PipelineMode mode :
       {PipelineMode::kOriginal, PipelineMode::kEnergyAware}) {
    Stack fresh;
    fresh.server.host(page);
    fresh.server.host(css);
    const auto metrics = fresh.load("http://s/index.html", config_for(mode, false));
    ASSERT_TRUE(metrics.has_value());
    EXPECT_EQ(metrics->objects_fetched, 2);
  }
}

TEST(Pipeline, DocumentWriteDiscoversResources) {
  Stack stack;
  net::Resource page;
  page.url = "http://s/index.html";
  page.kind = net::ResourceKind::kHtml;
  page.body =
      "<script>document.write(\"<img src='http://s/w.jpg'>\");</script>";
  page.size = page.body.size();
  stack.server.host(page);
  net::Resource image;
  image.url = "http://s/w.jpg";
  image.kind = net::ResourceKind::kImage;
  image.size = 2048;
  stack.server.host(image);

  PageLoad* load = nullptr;
  const auto metrics = stack.load("http://s/index.html",
                                  config_for(PipelineMode::kOriginal, false),
                                  &load);
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->objects_fetched, 2);
  EXPECT_EQ(load->dom().find_all("img").size(), 1u);
}

TEST(Pipeline, FeaturesMatchTable1Semantics) {
  Stack stack;
  corpus::PageGenerator generator(7);
  const corpus::PageSpec spec = corpus::espn_sports_spec();
  const std::string url = generator.host_page(spec, stack.server);
  PageLoad* load = nullptr;
  const auto metrics =
      stack.load(url, config_for(PipelineMode::kEnergyAware, false), &load);
  ASSERT_TRUE(metrics.has_value());
  const PageFeatures& features = load->features();

  EXPECT_NEAR(features.transmission_time, metrics->transmission_time(), 1e-9);
  EXPECT_EQ(static_cast<int>(features.object_count), metrics->objects_fetched);
  EXPECT_EQ(static_cast<int>(features.js_file_count), spec.js_files);
  // Figures: html images + css images + js images + flash.
  const int expected_figures = spec.html_images +
                               spec.css_files * spec.css_images +
                               spec.js_files * spec.js_images +
                               spec.flash_objects;
  EXPECT_EQ(static_cast<int>(features.figure_count), expected_figures);
  EXPECT_GT(features.figure_size_kb, 0);
  EXPECT_GT(features.page_size_kb, 0);
  EXPECT_GT(features.js_running_time, 0);
  EXPECT_GE(static_cast<int>(features.secondary_url_count), spec.anchors);
  EXPECT_GT(features.page_height, 0);
  EXPECT_GE(features.page_width, 320);
  EXPECT_EQ(features.to_row().size(), PageFeatures::kCount);
}

TEST(Pipeline, DoubleStartThrows) {
  Stack stack;
  net::Resource page;
  page.url = "http://s/index.html";
  page.kind = net::ResourceKind::kHtml;
  page.body = "<p>x</p>";
  page.size = page.body.size();
  stack.server.host(page);

  PageLoad load(stack.sim, stack.client, stack.cpu,
                config_for(PipelineMode::kOriginal, false), 1);
  load.start("http://s/index.html", [](const LoadMetrics&) {});
  EXPECT_THROW(load.start("http://s/index.html", [](const LoadMetrics&) {}),
               std::logic_error);
  stack.sim.run();
}

}  // namespace
}  // namespace eab::browser
