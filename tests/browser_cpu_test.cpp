#include "browser/cpu.hpp"

#include <gtest/gtest.h>

namespace eab::browser {
namespace {

TEST(CpuScheduler, RunsTasksFifoWithCosts) {
  sim::Simulator sim;
  CpuScheduler cpu(sim, 0.45);
  std::vector<std::pair<int, Seconds>> done;
  cpu.submit(2.0, [&] { done.emplace_back(1, sim.now()); });
  cpu.submit(3.0, [&] { done.emplace_back(2, sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].first, 1);
  EXPECT_DOUBLE_EQ(done[0].second, 2.0);
  EXPECT_DOUBLE_EQ(done[1].second, 5.0);
}

TEST(CpuScheduler, BusyFlagAndQueueDepth) {
  sim::Simulator sim;
  CpuScheduler cpu(sim, 0.45);
  EXPECT_FALSE(cpu.busy());
  cpu.submit(1.0, [] {});
  cpu.submit(1.0, [] {});
  EXPECT_TRUE(cpu.busy());
  EXPECT_EQ(cpu.queue_depth(), 1u);  // one running, one queued
  sim.run();
  EXPECT_FALSE(cpu.busy());
}

TEST(CpuScheduler, PowerTimelineTracksBusyPeriods) {
  sim::Simulator sim;
  CpuScheduler cpu(sim, 0.45);
  sim.schedule_at(1.0, [&] { cpu.submit(2.0, [] {}); });
  sim.run();
  sim.run_until(10.0);
  EXPECT_NEAR(cpu.power().energy(0, 10), 0.45 * 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(cpu.power().current_power(), 0.0);
}

TEST(CpuScheduler, BackToBackTasksKeepPowerHigh) {
  sim::Simulator sim;
  CpuScheduler cpu(sim, 0.45);
  cpu.submit(1.0, [] {});
  cpu.submit(1.0, [] {});
  sim.run();
  // One continuous busy period, not two with a gap.
  EXPECT_NEAR(cpu.power().energy(0, 2), 0.9, 1e-9);
  EXPECT_LE(cpu.power().change_count(), 3u);
}

TEST(CpuScheduler, TasksSubmittedFromTaskRunAfterwards) {
  sim::Simulator sim;
  CpuScheduler cpu(sim, 0.45);
  Seconds inner_done = -1;
  cpu.submit(1.0, [&] {
    cpu.submit(2.0, [&] { inner_done = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(inner_done, 3.0);
  EXPECT_DOUBLE_EQ(cpu.busy_time(), 3.0);
}

TEST(CpuScheduler, ZeroCostTaskCompletes) {
  sim::Simulator sim;
  CpuScheduler cpu(sim, 0.45);
  bool done = false;
  cpu.submit(0.0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

TEST(CpuScheduler, CancelQueuedTask) {
  sim::Simulator sim;
  CpuScheduler cpu(sim, 0.45);
  bool first = false;
  bool second = false;
  cpu.submit(1.0, [&] { first = true; });
  const TaskId id = cpu.submit(1.0, [&] { second = true; });
  EXPECT_TRUE(cpu.cancel(id));
  EXPECT_FALSE(cpu.cancel(id));  // already gone
  sim.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
  EXPECT_DOUBLE_EQ(cpu.busy_time(), 1.0);
}

TEST(CpuScheduler, CannotCancelRunningTask) {
  sim::Simulator sim;
  CpuScheduler cpu(sim, 0.45);
  const TaskId id = cpu.submit(1.0, [] {});
  // The task starts immediately on submit; it is no longer in the queue.
  EXPECT_FALSE(cpu.cancel(id));
  sim.run();
}

TEST(CpuScheduler, CancelDefaultIdIsNoOp) {
  sim::Simulator sim;
  CpuScheduler cpu(sim, 0.45);
  EXPECT_FALSE(cpu.cancel(TaskId{}));
}

TEST(CpuScheduler, RejectsBadSubmissions) {
  sim::Simulator sim;
  CpuScheduler cpu(sim, 0.45);
  EXPECT_THROW(cpu.submit(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(cpu.submit(1.0, nullptr), std::invalid_argument);
}

TEST(CpuScheduler, BusyTimeAccumulates) {
  sim::Simulator sim;
  CpuScheduler cpu(sim, 0.45);
  for (int i = 0; i < 10; ++i) cpu.submit(0.5, [] {});
  sim.run();
  EXPECT_DOUBLE_EQ(cpu.busy_time(), 5.0);
}

}  // namespace
}  // namespace eab::browser
