#include "corpus/generator.hpp"

#include <gtest/gtest.h>

#include "corpus/page_spec.hpp"
#include "web/css.hpp"
#include "web/html_parser.hpp"

namespace eab::corpus {
namespace {

TEST(PageSpec, BenchmarksMatchTable3) {
  EXPECT_EQ(mobile_benchmark().size(), 10u);
  EXPECT_EQ(full_benchmark().size(), 10u);
  for (const PageSpec& spec : mobile_benchmark()) EXPECT_TRUE(spec.mobile);
  for (const PageSpec& spec : full_benchmark()) EXPECT_FALSE(spec.mobile);
}

TEST(PageSpec, EspnCalibratedNearPaperWeight) {
  const PageSpec espn = espn_sports_spec();
  EXPECT_FALSE(espn.mobile);
  EXPECT_EQ(espn.topic, Topic::kSports);
  // Paper Fig 4: 760 KB total.
  EXPECT_NEAR(to_kilobytes(espn.total_bytes()), 760.0, 60.0);
}

TEST(PageSpec, MobilePagesAreMuchLighter) {
  Bytes mobile_total = 0;
  Bytes full_total = 0;
  for (const PageSpec& spec : mobile_benchmark()) mobile_total += spec.total_bytes();
  for (const PageSpec& spec : full_benchmark()) full_total += spec.total_bytes();
  EXPECT_LT(mobile_total * 3, full_total);
}

TEST(PageSpec, TopicNames) {
  EXPECT_STREQ(to_string(Topic::kSports), "sports");
  EXPECT_STREQ(to_string(Topic::kFinance), "finance");
}

TEST(Generator, HostsEveryReferencedResource) {
  // Parse the generated HTML/CSS/JS and verify that every static reference
  // resolves — generated pages must load with zero 404s.
  for (const PageSpec& spec : {espn_sports_spec(), m_cnn_spec()}) {
    net::WebServer server;
    PageGenerator generator(3);
    const std::string main_url = generator.host_page(spec, server);

    const net::Resource* main = server.find(main_url);
    ASSERT_NE(main, nullptr);
    const auto parsed = web::parse_html(main->body);
    for (const auto& ref : parsed.references) {
      EXPECT_NE(server.find(ref.url), nullptr) << ref.url;
      if (ref.kind == net::ResourceKind::kCss) {
        for (const auto& url : web::scan_css_urls(server.find(ref.url)->body)) {
          EXPECT_NE(server.find(url), nullptr) << url;
        }
      }
    }
  }
}

TEST(Generator, StructuralCountsMatchSpec) {
  const PageSpec spec = espn_sports_spec();
  net::WebServer server;
  PageGenerator generator(3);
  const auto parsed = web::parse_html(
      server.find(generator.host_page(spec, server))->body);

  // <img> tags, stylesheets, script files as specified.
  EXPECT_EQ(static_cast<int>(parsed.dom.find_all("img").size()),
            spec.html_images);
  int css_refs = 0;
  int js_refs = 0;
  for (const auto& ref : parsed.references) {
    if (ref.kind == net::ResourceKind::kCss) ++css_refs;
    if (ref.kind == net::ResourceKind::kJs) ++js_refs;
  }
  EXPECT_EQ(css_refs, spec.css_files);
  EXPECT_EQ(js_refs, spec.js_files);
  EXPECT_EQ(static_cast<int>(parsed.secondary_urls.size()), spec.anchors);
  EXPECT_EQ(parsed.inline_scripts.size(), 1u);
}

TEST(Generator, SizesHitTargets) {
  const PageSpec spec = m_cnn_spec();
  net::WebServer server;
  PageGenerator generator(3);
  const std::string main_url = generator.host_page(spec, server);
  EXPECT_GE(server.find(main_url)->size, spec.html_bytes);
  // All resources hosted: html + css + css images + js + js images +
  // html images.
  const std::size_t expected =
      1 + static_cast<std::size_t>(spec.css_files) +
      static_cast<std::size_t>(spec.css_files * spec.css_images) +
      static_cast<std::size_t>(spec.js_files) +
      static_cast<std::size_t>(spec.js_files * spec.js_images) +
      static_cast<std::size_t>(spec.html_images) +
      static_cast<std::size_t>(spec.flash_objects);
  EXPECT_EQ(server.resource_count(), expected);
}

TEST(Generator, DeterministicPerSeedAndSite) {
  const PageSpec spec = m_cnn_spec();
  net::WebServer a;
  net::WebServer b;
  PageGenerator g1(5);
  PageGenerator g2(5);
  const std::string url_a = g1.host_page(spec, a);
  const std::string url_b = g2.host_page(spec, b);
  EXPECT_EQ(a.find(url_a)->body, b.find(url_b)->body);

  net::WebServer c;
  PageGenerator g3(6);  // different seed -> different content
  EXPECT_NE(c.find(g3.host_page(spec, c)) -> body, a.find(url_a)->body);
}

TEST(Generator, CssContainsDeclaredImageChain) {
  const PageSpec spec = espn_sports_spec();
  net::WebServer server;
  PageGenerator generator(3);
  generator.host_page(spec, server);
  const net::Resource* css = server.find("http://" + spec.site + "/css/s0.css");
  ASSERT_NE(css, nullptr);
  const auto urls = web::scan_css_urls(css->body);
  EXPECT_EQ(static_cast<int>(urls.size()), spec.css_images);
  // Full parse also succeeds and yields rules.
  EXPECT_GT(web::parse_css(css->body).rules.size(), 5u);
}

TEST(SpecVariants, JitterDeterministicAndDistinct) {
  const PageSpec base = espn_sports_spec();
  const auto a = spec_variants(base, 4, 9);
  const auto b = spec_variants(base, 4, 9);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[0].site, base.site);  // variant 0 is the base itself
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_EQ(a[i].html_bytes, b[i].html_bytes);
    EXPECT_NE(a[i].site, base.site);
    EXPECT_EQ(a[i].topic, base.topic);
    EXPECT_EQ(a[i].mobile, base.mobile);
  }
}

}  // namespace
}  // namespace eab::corpus
