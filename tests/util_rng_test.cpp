#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace eab {
namespace {

TEST(DeriveSeed, DeterministicAndOrderFree) {
  // Pure function of (base, index): any evaluation order gives the same
  // seeds, which is what lets parallel sweeps match serial ones.
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  const auto late = derive_seed(42, 1000);
  const auto early = derive_seed(42, 3);
  EXPECT_EQ(derive_seed(42, 1000), late);
  EXPECT_EQ(derive_seed(42, 3), early);
}

TEST(DeriveSeed, DistinctAcrossIndicesAndBases) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ULL, 1ULL, 42ULL, ~0ULL}) {
    for (std::uint64_t index = 0; index < 256; ++index) {
      seen.insert(derive_seed(base, index));
    }
  }
  EXPECT_EQ(seen.size(), 4u * 256u);
}

TEST(DeriveSeed, SeedsProduceIndependentStreams) {
  Rng a(derive_seed(5, 0));
  Rng b(derive_seed(5, 1));
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(7);
  const auto first = rng.next_u64();
  rng.next_u64();
  rng.reseed(7);
  EXPECT_EQ(rng.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(6);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(7)];
  for (int count : counts) {
    EXPECT_NEAR(count, n / 7, n / 7 * 0.1);
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  double sum = 0;
  double sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(9);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng rng(10);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(25.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 25.0, 0.6);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, PoissonMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(4.5));
  EXPECT_NEAR(sum / n, 4.5, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng rng(14);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(15);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(16);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadWeights) {
  Rng rng(17);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({1.0, -0.5}), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(18);
  Rng child = parent.fork();
  // The child stream differs from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(19);
  Rng b(19);
  Rng child_a = a.fork();
  Rng child_b = b.fork();
  EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(20);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(1.0, 0.5), 0.0);
  }
}

}  // namespace
}  // namespace eab
