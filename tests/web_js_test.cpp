#include "web/js.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace eab::web::js {
namespace {

/// Records everything a script does to the outside world.
class RecordingHost : public JsHost {
 public:
  void document_write(const std::string& html) override {
    writes.push_back(html);
  }
  void request_resource(const std::string& url,
                        net::ResourceKind kind) override {
    requests.emplace_back(url, kind);
  }
  double random() override { return next_random; }

  std::vector<std::string> writes;
  std::vector<std::pair<std::string, net::ResourceKind>> requests;
  double next_random = 0.5;
};

struct JsFixture : ::testing::Test {
  RecordingHost host;
  Interpreter interp{host};

  Value run_and_get(const std::string& source, const std::string& global) {
    const RunResult result = interp.run(source);
    EXPECT_TRUE(result.completed) << result.error;
    return interp.global(global);
  }
};

// --- lexer ---------------------------------------------------------------

TEST(JsLexer, TokenKinds) {
  const auto tokens = tokenize("var x = 12.5; // comment\n'str' >= &&");
  ASSERT_GE(tokens.size(), 7u);
  EXPECT_EQ(tokens[0].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[2].text, "=");
  EXPECT_EQ(tokens[3].type, TokenType::kNumber);
  EXPECT_DOUBLE_EQ(tokens[3].number, 12.5);
  EXPECT_EQ(tokens[5].type, TokenType::kString);
  EXPECT_EQ(tokens[5].text, "str");
  EXPECT_EQ(tokens[6].text, ">=");
  EXPECT_EQ(tokens.back().type, TokenType::kEnd);
}

TEST(JsLexer, StringEscapes) {
  const auto tokens = tokenize(R"("a\nb\"c\\d")");
  EXPECT_EQ(tokens[0].text, "a\nb\"c\\d");
}

TEST(JsLexer, BlockComments) {
  const auto tokens = tokenize("1 /* skip \n lines */ 2");
  ASSERT_EQ(tokens.size(), 3u);  // two numbers + end
}

TEST(JsLexer, ErrorsOnBadInput) {
  EXPECT_THROW(tokenize("\"unterminated"), JsError);
  EXPECT_THROW(tokenize("var x = @;"), JsError);
  EXPECT_THROW(tokenize("/* never closed"), JsError);
}

// --- parser --------------------------------------------------------------

TEST(JsParser, SyntaxErrorsCarryOffsets) {
  try {
    parse("var = 5;");
    FAIL() << "expected JsError";
  } catch (const JsError& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
  EXPECT_THROW(parse("if (x { }"), JsError);
  EXPECT_THROW(parse("function () {}"), JsError);
  EXPECT_THROW(parse("x = ;"), JsError);
  EXPECT_THROW(parse("{ unclosed"), JsError);
}

TEST(JsParser, AcceptsRepresentativePrograms) {
  EXPECT_NO_THROW(parse("var a = 1, b = 2; a = a + b;"));
  EXPECT_NO_THROW(parse("for (var i = 0; i < 10; i = i + 1) { work(i); }"));
  EXPECT_NO_THROW(parse("function f(a, b) { return a * b; } f(2, 3);"));
  EXPECT_NO_THROW(parse("while (x < 3) { x += 1; }"));
  EXPECT_NO_THROW(parse("var a = [1, 2, 3]; a[0] = a[1] + a[2];"));
  EXPECT_NO_THROW(parse("for (;;) { break_me = 1; }"));
}

// --- interpreter ----------------------------------------------------------

TEST_F(JsFixture, ArithmeticAndPrecedence) {
  EXPECT_DOUBLE_EQ(run_and_get("var x = 2 + 3 * 4;", "x").to_number(), 14);
  EXPECT_DOUBLE_EQ(run_and_get("var y = (2 + 3) * 4;", "y").to_number(), 20);
  EXPECT_DOUBLE_EQ(run_and_get("var z = 17 % 5;", "z").to_number(), 2);
  EXPECT_DOUBLE_EQ(run_and_get("var w = -3 + 1;", "w").to_number(), -2);
}

TEST_F(JsFixture, StringConcatenation) {
  EXPECT_EQ(run_and_get("var s = 'a' + 'b' + 1;", "s").to_string(), "ab1");
  EXPECT_EQ(run_and_get("var t = 1 + 2 + 'x';", "t").to_string(), "3x");
}

TEST_F(JsFixture, ComparisonAndLogic) {
  EXPECT_TRUE(run_and_get("var a = 3 < 5 && 5 <= 5;", "a").truthy());
  EXPECT_FALSE(run_and_get("var b = 1 == 2 || false;", "b").truthy());
  EXPECT_TRUE(run_and_get("var c = 'x' == 'x';", "c").truthy());
  EXPECT_TRUE(run_and_get("var d = !0;", "d").truthy());
}

TEST_F(JsFixture, ShortCircuitSkipsSideEffects) {
  interp.run("var hit = 0; function boom() { hit = 1; return true; }");
  interp.run("var r = false && boom();");
  EXPECT_DOUBLE_EQ(interp.global("hit").to_number(), 0);
  interp.run("var r2 = true || boom();");
  EXPECT_DOUBLE_EQ(interp.global("hit").to_number(), 0);
}

TEST_F(JsFixture, WhileAndForLoops) {
  EXPECT_DOUBLE_EQ(
      run_and_get("var s = 0; for (var i = 1; i <= 10; i = i + 1) { s += i; }",
                  "s")
          .to_number(),
      55);
  EXPECT_DOUBLE_EQ(
      run_and_get("var n = 0; while (n < 7) { n += 2; }", "n").to_number(), 8);
}

TEST_F(JsFixture, IncrementOperators) {
  EXPECT_DOUBLE_EQ(
      run_and_get("var k = 0; for (var i = 0; i < 4; i++) { k++; }", "k")
          .to_number(),
      4);
  EXPECT_DOUBLE_EQ(run_and_get("var m = 5; --m;", "m").to_number(), 4);
}

TEST_F(JsFixture, FunctionsParamsReturnRecursion) {
  interp.run("function add(a, b) { return a + b; } var r = add(2, 40);");
  EXPECT_DOUBLE_EQ(interp.global("r").to_number(), 42);
  interp.run(
      "function fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }"
      "var f = fib(10);");
  EXPECT_DOUBLE_EQ(interp.global("f").to_number(), 55);
}

TEST_F(JsFixture, FunctionLocalsDoNotLeak) {
  interp.run("function f() { var secret = 1; return 2; } f();");
  EXPECT_TRUE(interp.global("secret").is_undefined());
}

TEST_F(JsFixture, GlobalsPersistAcrossScripts) {
  interp.run("var counter = 1;");
  interp.run("counter = counter + 1;");
  EXPECT_DOUBLE_EQ(interp.global("counter").to_number(), 2);
}

TEST_F(JsFixture, FunctionsPersistAcrossScripts) {
  interp.run("function mk(u) { loadImage(u); }");
  interp.run("mk('late.jpg');");
  ASSERT_EQ(host.requests.size(), 1u);
  EXPECT_EQ(host.requests[0].first, "late.jpg");
}

TEST_F(JsFixture, Arrays) {
  interp.run("var a = [10, 20]; a[2] = 30; var n = len(a); var s = a[0] + a[2];");
  EXPECT_DOUBLE_EQ(interp.global("n").to_number(), 3);
  EXPECT_DOUBLE_EQ(interp.global("s").to_number(), 40);
  interp.run("push(a, 99); var m = a.length;");
  EXPECT_DOUBLE_EQ(interp.global("m").to_number(), 4);
}

TEST_F(JsFixture, StringLengthAndIndex) {
  interp.run("var s = 'hello'; var n = s.length; var c = s[1];");
  EXPECT_DOUBLE_EQ(interp.global("n").to_number(), 5);
  EXPECT_EQ(interp.global("c").to_string(), "e");
}

TEST_F(JsFixture, DocumentWriteReachesHost) {
  interp.run("document.write('<div>' + 'x' + '</div>');");
  ASSERT_EQ(host.writes.size(), 1u);
  EXPECT_EQ(host.writes[0], "<div>x</div>");
}

TEST_F(JsFixture, ResourceBuiltinsReachHost) {
  interp.run(
      "loadImage('a.jpg'); loadScript('b.js'); loadCss('c.css');"
      "fetchData('d.bin'); window.loadImage('e.png');");
  ASSERT_EQ(host.requests.size(), 5u);
  EXPECT_EQ(host.requests[0].second, net::ResourceKind::kImage);
  EXPECT_EQ(host.requests[1].second, net::ResourceKind::kJs);
  EXPECT_EQ(host.requests[2].second, net::ResourceKind::kCss);
  EXPECT_EQ(host.requests[3].second, net::ResourceKind::kOther);
  EXPECT_EQ(host.requests[4].first, "e.png");
}

TEST_F(JsFixture, MathBuiltins) {
  interp.run(
      "var f = Math.floor(3.9); var c = Math.ceil(3.1); var a = Math.abs(-2);"
      "var mx = Math.max(1, 7); var mn = Math.min(1, 7);"
      "var r = Math.random();");
  EXPECT_DOUBLE_EQ(interp.global("f").to_number(), 3);
  EXPECT_DOUBLE_EQ(interp.global("c").to_number(), 4);
  EXPECT_DOUBLE_EQ(interp.global("a").to_number(), 2);
  EXPECT_DOUBLE_EQ(interp.global("mx").to_number(), 7);
  EXPECT_DOUBLE_EQ(interp.global("mn").to_number(), 1);
  EXPECT_DOUBLE_EQ(interp.global("r").to_number(), 0.5);
}

TEST_F(JsFixture, DynamicUrlConstruction) {
  interp.run(
      "var base = 'http://s/img/';"
      "for (var i = 0; i < 3; i = i + 1) { loadImage(base + 'p' + i + '.jpg'); }");
  ASSERT_EQ(host.requests.size(), 3u);
  EXPECT_EQ(host.requests[2].first, "http://s/img/p2.jpg");
}

TEST_F(JsFixture, RuntimeErrorsReportedNotThrown) {
  const RunResult r1 = interp.run("undefinedFn();");
  EXPECT_FALSE(r1.completed);
  EXPECT_FALSE(r1.error.empty());
  const RunResult r2 = interp.run("var x = 5[0];");
  EXPECT_FALSE(r2.completed);
  const RunResult r3 = interp.run("return 5;");
  EXPECT_FALSE(r3.completed);
}

TEST_F(JsFixture, SyntaxErrorReportedNotThrown) {
  const RunResult result = interp.run("var = broken");
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.error.find("parse error"), std::string::npos);
}

TEST_F(JsFixture, InterpreterSurvivesErrorAndContinues) {
  interp.run("var ok = 1;");
  interp.run("totally broken ((");
  interp.run("ok = ok + 1;");
  EXPECT_DOUBLE_EQ(interp.global("ok").to_number(), 2);
}

TEST(JsInterpreter, OpBudgetStopsRunaways) {
  RecordingHost host;
  Interpreter interp(host, 10'000);
  const RunResult result = interp.run("while (true) { var x = 1; }");
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.error.find("budget"), std::string::npos);
  EXPECT_LE(result.ops, 10'001u);
}

TEST(JsInterpreter, StackOverflowGuard) {
  RecordingHost host;
  Interpreter interp(host);
  const RunResult result = interp.run("function f() { return f(); } f();");
  EXPECT_FALSE(result.completed);
}

TEST_F(JsFixture, OpsScaleWithWork) {
  const RunResult small = interp.run("for (var i = 0; i < 10; i++) { }");
  const RunResult large = interp.run("for (var j = 0; j < 1000; j++) { }");
  EXPECT_GT(large.ops, small.ops * 20);
  EXPECT_EQ(interp.total_ops(), small.ops + large.ops);
}

TEST_F(JsFixture, CompoundAssignmentOperators) {
  interp.run("var x = 10; x += 5; x -= 3; x *= 2; x /= 4;");
  EXPECT_DOUBLE_EQ(interp.global("x").to_number(), 6);
  interp.run("var s = 'a'; s += 'b';");
  EXPECT_EQ(interp.global("s").to_string(), "ab");
}

TEST_F(JsFixture, ValueCoercions) {
  EXPECT_DOUBLE_EQ(run_and_get("var a = '12' * 2;", "a").to_number(), 24);
  EXPECT_TRUE(run_and_get("var b = 'nonempty';", "b").truthy());
  EXPECT_FALSE(run_and_get("var c = '';", "c").truthy());
  EXPECT_FALSE(run_and_get("var d = null;", "d").truthy());
  EXPECT_EQ(run_and_get("var e = undefined;", "e").to_string(), "undefined");
}

TEST_F(JsFixture, BreakExitsLoop) {
  interp.run(
      "var n = 0;"
      "for (var i = 0; i < 100; i++) { if (i == 5) { break; } n = n + 1; }");
  EXPECT_DOUBLE_EQ(interp.global("n").to_number(), 5);
  interp.run("var m = 0; while (true) { m = m + 1; if (m >= 3) { break; } }");
  EXPECT_DOUBLE_EQ(interp.global("m").to_number(), 3);
}

TEST_F(JsFixture, ContinueSkipsIteration) {
  interp.run(
      "var evens = 0;"
      "for (var i = 0; i < 10; i++) { if (i % 2 == 1) { continue; }"
      " evens = evens + 1; }");
  EXPECT_DOUBLE_EQ(interp.global("evens").to_number(), 5);
}

TEST_F(JsFixture, BreakOutsideLoopIsError) {
  EXPECT_FALSE(interp.run("break;").completed);
  EXPECT_FALSE(interp.run("continue;").completed);
  EXPECT_FALSE(interp.run("function f() { break; } f();").completed);
}

TEST_F(JsFixture, TypeofOperator) {
  interp.run(
      "var tn = typeof 1; var ts = typeof 'x'; var tb = typeof true;"
      "var tu = typeof undefined; var to = typeof null;"
      "function g() {} var tf = typeof g; var ta = typeof [1];");
  EXPECT_EQ(interp.global("tn").to_string(), "number");
  EXPECT_EQ(interp.global("ts").to_string(), "string");
  EXPECT_EQ(interp.global("tb").to_string(), "boolean");
  EXPECT_EQ(interp.global("tu").to_string(), "undefined");
  EXPECT_EQ(interp.global("to").to_string(), "object");
  EXPECT_EQ(interp.global("tf").to_string(), "function");
  EXPECT_EQ(interp.global("ta").to_string(), "object");
}

TEST_F(JsFixture, StringBuiltins) {
  interp.run(
      "var i1 = indexOf('hello world', 'world');"
      "var i2 = indexOf('hello', 'zzz');"
      "var sub = substring('browser', 1, 4);"
      "var tail = substring('browser', 4);"
      "var ch = charAt('abc', 1);");
  EXPECT_DOUBLE_EQ(interp.global("i1").to_number(), 6);
  EXPECT_DOUBLE_EQ(interp.global("i2").to_number(), -1);
  EXPECT_EQ(interp.global("sub").to_string(), "row");
  EXPECT_EQ(interp.global("tail").to_string(), "ser");
  EXPECT_EQ(interp.global("ch").to_string(), "b");
}

TEST_F(JsFixture, SplitBuiltin) {
  interp.run(
      "var parts = split('a,b,c', ',');"
      "var n = parts.length; var first = parts[0]; var last = parts[2];"
      "var chars = split('xy', '');");
  EXPECT_DOUBLE_EQ(interp.global("n").to_number(), 3);
  EXPECT_EQ(interp.global("first").to_string(), "a");
  EXPECT_EQ(interp.global("last").to_string(), "c");
  interp.run("var c0 = chars[0];");
  EXPECT_EQ(interp.global("c0").to_string(), "x");
}

TEST_F(JsFixture, UrlParsingWithBuiltins) {
  // A realistic corpus-script pattern: derive an image path from a URL.
  interp.run(
      "var url = 'http://site/img/photo.jpg';"
      "var slash = indexOf(url, '/img/');"
      "var name = substring(url, slash + 5);"
      "if (typeof name == 'string' && name.length > 0) { loadImage(name); }");
  ASSERT_EQ(host.requests.size(), 1u);
  EXPECT_EQ(host.requests[0].first, "photo.jpg");
}

TEST_F(JsFixture, ObjectLiteralsGetAndSet) {
  interp.run(
      "var cfg = {width: 300, name: 'banner', 'with-dash': 7};"
      "var w = cfg.width; var n = cfg.name; var d = cfg['with-dash'];"
      "cfg.height = 150; cfg['depth'] = 2;"
      "var h = cfg.height; var dp = cfg.depth; var missing = cfg.nope;");
  EXPECT_DOUBLE_EQ(interp.global("w").to_number(), 300);
  EXPECT_EQ(interp.global("n").to_string(), "banner");
  EXPECT_DOUBLE_EQ(interp.global("d").to_number(), 7);
  EXPECT_DOUBLE_EQ(interp.global("h").to_number(), 150);
  EXPECT_DOUBLE_EQ(interp.global("dp").to_number(), 2);
  EXPECT_TRUE(interp.global("missing").is_undefined());
}

TEST_F(JsFixture, ObjectsShareByReference) {
  interp.run(
      "var a = {count: 1}; var b = a; b.count = 5; var c = a.count;");
  EXPECT_DOUBLE_EQ(interp.global("c").to_number(), 5);
}

TEST_F(JsFixture, NestedObjectsAndArrays) {
  interp.run(
      "var site = {imgs: ['a.jpg', 'b.jpg'], meta: {lang: 'en'}};"
      "for (var i = 0; i < site.imgs.length; i++) { loadImage(site.imgs[i]); }"
      "var lang = site.meta.lang;");
  ASSERT_EQ(host.requests.size(), 2u);
  EXPECT_EQ(host.requests[1].first, "b.jpg");
  EXPECT_EQ(interp.global("lang").to_string(), "en");
}

TEST_F(JsFixture, TypeofObjectAndToString) {
  interp.run("var o = {}; var t = typeof o; var s = '' + o;");
  EXPECT_EQ(interp.global("t").to_string(), "object");
  EXPECT_EQ(interp.global("s").to_string(), "[object Object]");
}

TEST_F(JsFixture, SetPropertyOnNonObjectFails) {
  const RunResult result = interp.run("var n = 5; n.x = 1;");
  EXPECT_FALSE(result.completed);
}

}  // namespace
}  // namespace eab::web::js
