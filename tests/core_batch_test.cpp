#include "core/batch.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "corpus/page_spec.hpp"
#include "util/rng.hpp"

namespace eab::core {
namespace {

/// A deliberately small page so each test load stays cheap.
corpus::PageSpec tiny_spec(int variant) {
  corpus::PageSpec spec;
  spec.site = "test.example/" + std::to_string(variant);
  spec.mobile = true;
  spec.html_bytes = kilobytes(6);
  spec.css_files = 1;
  spec.css_bytes = kilobytes(2);
  spec.css_images = 1;
  spec.js_files = 1;
  spec.js_bytes = kilobytes(2);
  spec.js_busy_iterations = 200;
  spec.js_images = 1;
  spec.html_images = 2;
  spec.image_bytes = kilobytes(3);
  spec.anchors = 4;
  spec.paragraphs = 4;
  return spec;
}

std::vector<BatchJob> sweep_jobs(int count) {
  std::vector<BatchJob> jobs;
  for (int i = 0; i < count; ++i) {
    BatchJob job;
    job.spec = tiny_spec(i % 4);
    job.config = StackConfig::for_mode(i % 2 == 0
                                           ? browser::PipelineMode::kOriginal
                                           : browser::PipelineMode::kEnergyAware);
    job.reading_window = 5.0;
    job.seed = derive_seed(99, static_cast<std::uint64_t>(i));
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void expect_identical(const SingleLoadResult& a, const SingleLoadResult& b) {
  EXPECT_EQ(a.energy.load_j, b.energy.load_j);
  EXPECT_EQ(a.energy.with_reading_j, b.energy.with_reading_j);
  EXPECT_EQ(a.metrics.total_time(), b.metrics.total_time());
  EXPECT_EQ(a.metrics.transmission_time(), b.metrics.transmission_time());
  EXPECT_EQ(a.dch_time, b.dch_time);
  EXPECT_EQ(a.fach_time, b.fach_time);
  EXPECT_EQ(a.bytes_fetched, b.bytes_fetched);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.dom_signature, b.dom_signature);
  EXPECT_EQ(a.features.to_row(), b.features.to_row());
}

TEST(BatchRunner, ParallelMatchesSerialElementwise) {
  const auto jobs = sweep_jobs(8);
  std::vector<SingleLoadResult> serial;
  for (const auto& job : jobs) {
    serial.push_back(
        run_single_load(job.spec, job.config, job.reading_window, job.seed));
  }

  BatchRunner runner(4);
  EXPECT_EQ(runner.threads(), 4);
  const auto parallel = runner.run(jobs);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial[i], parallel[i]);
  }
}

TEST(BatchRunner, MemoCacheHitsReturnIdenticalResults) {
  const auto jobs = sweep_jobs(4);
  BatchRunner runner(2);
  const auto first = runner.run(jobs);
  EXPECT_EQ(runner.cache_hits(), 0u);
  EXPECT_EQ(runner.cache_misses(), jobs.size());
  EXPECT_EQ(runner.cache_size(), jobs.size());

  const auto second = runner.run(jobs);
  EXPECT_EQ(runner.cache_hits(), jobs.size());
  EXPECT_EQ(runner.cache_misses(), jobs.size());
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(first[i], second[i]);
  }
}

TEST(BatchRunner, DuplicateJobsWithinBatchComputedOnce) {
  auto jobs = sweep_jobs(2);
  jobs.push_back(jobs[0]);  // exact duplicate of job 0
  jobs.push_back(jobs[1]);  // exact duplicate of job 1
  BatchRunner runner(2);
  const auto results = runner.run(jobs);
  EXPECT_EQ(runner.cache_misses(), 2u);  // only the distinct keys simulated
  EXPECT_EQ(runner.cache_hits(), 2u);    // duplicates served from the batch
  expect_identical(results[0], results[2]);
  expect_identical(results[1], results[3]);
}

TEST(BatchRunner, ClearCacheForcesRecomputation) {
  const auto jobs = sweep_jobs(2);
  BatchRunner runner(2);
  const auto first = runner.run(jobs);
  runner.clear_cache();
  EXPECT_EQ(runner.cache_size(), 0u);
  const auto second = runner.run(jobs);
  EXPECT_EQ(runner.cache_misses(), 2 * jobs.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    expect_identical(first[i], second[i]);
  }
}

TEST(BatchRunner, EabJobsOneDegradesToSerial) {
  ASSERT_EQ(setenv("EAB_JOBS", "1", 1), 0);
  BatchRunner runner;  // resolves from the environment
  unsetenv("EAB_JOBS");
  EXPECT_EQ(runner.threads(), 1);

  const auto jobs = sweep_jobs(4);
  const auto results = runner.run(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(i);
    const auto expected = run_single_load(jobs[i].spec, jobs[i].config,
                                          jobs[i].reading_window, jobs[i].seed);
    expect_identical(expected, results[i]);
  }
}

TEST(BatchRunner, ResolveJobsPrecedence) {
  ASSERT_EQ(setenv("EAB_JOBS", "3", 1), 0);
  EXPECT_EQ(BatchRunner::resolve_jobs(0), 3);   // env wins when unpinned
  EXPECT_EQ(BatchRunner::resolve_jobs(7), 7);   // explicit request wins
  ASSERT_EQ(setenv("EAB_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(BatchRunner::resolve_jobs(0), 1);   // garbage falls back
  unsetenv("EAB_JOBS");
  EXPECT_GE(BatchRunner::resolve_jobs(0), 1);
}

TEST(BatchRunner, EmptyBatchReturnsEmpty) {
  BatchRunner runner(2);
  EXPECT_TRUE(runner.run({}).empty());
  EXPECT_EQ(runner.cache_hits(), 0u);
  EXPECT_EQ(runner.cache_misses(), 0u);
}

TEST(BatchMemoKey, DistinguishesEveryKeyedInput) {
  BatchJob base;
  base.spec = tiny_spec(0);
  base.config = StackConfig::for_mode(browser::PipelineMode::kOriginal);
  const auto key = batch_memo_key(base);

  auto other = base;
  other.seed += 1;
  EXPECT_NE(key, batch_memo_key(other));

  other = base;
  other.reading_window += 1.0;
  EXPECT_NE(key, batch_memo_key(other));

  other = base;
  other.spec.html_bytes += 1;
  EXPECT_NE(key, batch_memo_key(other));

  other = base;
  other.config.pipeline.mode = browser::PipelineMode::kEnergyAware;
  EXPECT_NE(key, batch_memo_key(other));

  other = base;
  other.config.rrc.t1 += 0.5;
  EXPECT_NE(key, batch_memo_key(other));

  other = base;
  other.config.force_idle_at_tx = !other.config.force_idle_at_tx;
  EXPECT_NE(key, batch_memo_key(other));

  other = base;
  other.config.chaos.abort_at = 2.0;
  EXPECT_NE(key, batch_memo_key(other));

  other = base;
  other.config.chaos.ril_socket_failures = 1;
  EXPECT_NE(key, batch_memo_key(other));

  other = base;
  other.config.chaos.cache_storm_count = 1;
  EXPECT_NE(key, batch_memo_key(other));

  other = base;
  other.config.sim_event_budget /= 2;
  EXPECT_NE(key, batch_memo_key(other));

  EXPECT_EQ(key, batch_memo_key(base));  // and it is deterministic
}

/// A configuration run_single_load rejects up front (stalls with no
/// watchdog), used as the deliberately-throwing job in quarantine tests.
BatchJob poisoned_job() {
  BatchJob job;
  job.spec = tiny_spec(0);
  job.config = StackConfig::for_mode(browser::PipelineMode::kOriginal);
  job.config.fault_plan.stall_rate = 0.5;
  job.config.retry.request_timeout = 0;  // validate_fault_wiring throws
  job.seed = 424242;
  return job;
}

TEST(BatchQuarantine, ThrowingJobIsIsolatedAndBatchCompletes) {
  auto jobs = sweep_jobs(6);
  jobs.insert(jobs.begin() + 3, poisoned_job());

  BatchRunner runner(4);
  const auto results = runner.run(jobs);
  ASSERT_EQ(results.size(), jobs.size());

  ASSERT_EQ(runner.last_errors().size(), 1u);
  const JobError& error = runner.last_errors()[0];
  EXPECT_EQ(error.index, 3u);
  EXPECT_NE(error.what.find("stall_rate"), std::string::npos) << error.what;
  EXPECT_EQ(error.key_digest, fnv1a_64(batch_memo_key(jobs[3])));
  EXPECT_EQ(error.seed, 424242u);

  // The quarantined slot is value-initialized; every other job completed.
  EXPECT_EQ(results[3].sim_events, 0u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == 3) continue;
    SCOPED_TRACE(i);
    EXPECT_GT(results[i].sim_events, 0u);
    EXPECT_GT(results[i].metrics.final_display, 0.0);
  }
  EXPECT_EQ(runner.metrics().value("batch.quarantined"), 1.0);
}

TEST(BatchQuarantine, SerialAndParallelQuarantinesAreIdentical) {
  auto jobs = sweep_jobs(5);
  jobs.insert(jobs.begin() + 1, poisoned_job());

  BatchRunner serial(1);
  BatchRunner parallel(4);
  const auto a = serial.run(jobs);
  const auto b = parallel.run(jobs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(a[i], b[i]);
  }
  ASSERT_EQ(serial.last_errors().size(), 1u);
  ASSERT_EQ(parallel.last_errors().size(), 1u);
  EXPECT_EQ(serial.last_errors()[0].index, parallel.last_errors()[0].index);
  EXPECT_EQ(serial.last_errors()[0].what, parallel.last_errors()[0].what);
  EXPECT_EQ(serial.last_errors()[0].key_digest,
            parallel.last_errors()[0].key_digest);
  EXPECT_TRUE(serial.metrics().same_as(parallel.metrics()));
}

TEST(BatchQuarantine, PoisonedKeyIsNeverCachedAndErrorsReset) {
  const std::vector<BatchJob> jobs = {poisoned_job()};
  BatchRunner runner(1);
  runner.run(jobs);
  EXPECT_EQ(runner.last_errors().size(), 1u);
  EXPECT_EQ(runner.cache_size(), 0u);

  // Re-running retries the load (no stale cache entry) and still reports
  // exactly one error, not an accumulated two.
  runner.run(jobs);
  EXPECT_EQ(runner.last_errors().size(), 1u);
  EXPECT_EQ(runner.cache_misses(), 2u);

  // A healthy batch clears the quarantine list.
  runner.run(sweep_jobs(2));
  EXPECT_TRUE(runner.last_errors().empty());
}

TEST(BatchQuarantine, DuplicatePoisonedJobsEachGetAnError) {
  std::vector<BatchJob> jobs = {poisoned_job(), poisoned_job()};
  BatchRunner runner(2);
  const auto results = runner.run(jobs);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_EQ(runner.last_errors().size(), 2u);
  EXPECT_EQ(runner.last_errors()[0].index, 0u);
  EXPECT_EQ(runner.last_errors()[1].index, 1u);
  EXPECT_EQ(runner.metrics().value("batch.quarantined"), 2.0);
}

TEST(EnvParsing, ParseEnvU64IsStrict) {
  std::uint64_t out = 0;
  EXPECT_TRUE(bench::parse_env_u64("0", out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(bench::parse_env_u64("18446744073709551615", out));
  EXPECT_EQ(out, 18446744073709551615ull);
  EXPECT_FALSE(bench::parse_env_u64(nullptr, out));
  EXPECT_FALSE(bench::parse_env_u64("", out));
  EXPECT_FALSE(bench::parse_env_u64("12x", out));
  EXPECT_FALSE(bench::parse_env_u64("x12", out));
  EXPECT_FALSE(bench::parse_env_u64("-1", out));
  EXPECT_FALSE(bench::parse_env_u64("+1", out));
  EXPECT_FALSE(bench::parse_env_u64(" 1", out));
  EXPECT_FALSE(bench::parse_env_u64("1 ", out));
  EXPECT_FALSE(bench::parse_env_u64("0x10", out));
  EXPECT_FALSE(bench::parse_env_u64("18446744073709551616", out));  // 2^64
}

TEST(EnvParsing, WellFormedOverridesAreHonored) {
  setenv("EAB_FAULT_SEED", "12345", 1);
  EXPECT_EQ(bench::fault_seed_from_env(7), 12345u);
  unsetenv("EAB_FAULT_SEED");
  EXPECT_EQ(bench::fault_seed_from_env(7), 7u);

  setenv("EAB_TRACE", "1", 1);
  EXPECT_TRUE(bench::trace_enabled());
  setenv("EAB_TRACE", "0", 1);
  EXPECT_FALSE(bench::trace_enabled());
  unsetenv("EAB_TRACE");
  EXPECT_FALSE(bench::trace_enabled());

  setenv("EAB_CHAOS_SEEDS", "32", 1);
  EXPECT_EQ(bench::chaos_seed_count_from_env(256), 32);
  unsetenv("EAB_CHAOS_SEEDS");
  EXPECT_EQ(bench::chaos_seed_count_from_env(256), 256);
}

TEST(EnvParsingDeathTest, MalformedFaultSeedDiesLoudly) {
  setenv("EAB_FAULT_SEED", "12bananas", 1);
  EXPECT_EXIT(bench::fault_seed_from_env(7), ::testing::ExitedWithCode(2),
              "EAB_FAULT_SEED");
  unsetenv("EAB_FAULT_SEED");
}

TEST(EnvParsingDeathTest, MalformedTraceFlagDiesLoudly) {
  setenv("EAB_TRACE", "yes", 1);
  EXPECT_EXIT(bench::trace_enabled(), ::testing::ExitedWithCode(2),
              "EAB_TRACE");
  unsetenv("EAB_TRACE");
}

TEST(EnvParsingDeathTest, ZeroChaosSeedsDiesLoudly) {
  setenv("EAB_CHAOS_SEEDS", "0", 1);
  EXPECT_EXIT(bench::chaos_seed_count_from_env(256),
              ::testing::ExitedWithCode(2), "EAB_CHAOS_SEEDS");
  unsetenv("EAB_CHAOS_SEEDS");
}

TEST(EnvParsing, SupervisionKnobsHonorWellFormedValues) {
  setenv("EAB_SUPERVISE", "1", 1);
  EXPECT_TRUE(bench::supervise_enabled());
  setenv("EAB_SUPERVISE", "0", 1);
  EXPECT_FALSE(bench::supervise_enabled());
  unsetenv("EAB_SUPERVISE");
  EXPECT_FALSE(bench::supervise_enabled());

  setenv("EAB_WORKERS", "8", 1);
  EXPECT_EQ(bench::workers_from_env(), 8);
  unsetenv("EAB_WORKERS");
  EXPECT_EQ(bench::workers_from_env(), 0);  // 0 = resolve_workers default

  setenv("EAB_SELF_CHAOS", "12345", 1);
  EXPECT_EQ(bench::self_chaos_seed_from_env(), 12345u);
  unsetenv("EAB_SELF_CHAOS");
  EXPECT_EQ(bench::self_chaos_seed_from_env(), 0u);

  setenv("EAB_SELF_CHAOS_KILLS", "4", 1);
  EXPECT_EQ(bench::self_chaos_kills_from_env(), 4);
  unsetenv("EAB_SELF_CHAOS_KILLS");
  EXPECT_EQ(bench::self_chaos_kills_from_env(), 0);

  setenv("EAB_SELF_CHAOS_ORC", "1", 1);
  EXPECT_TRUE(bench::self_chaos_orchestrator_enabled());
  unsetenv("EAB_SELF_CHAOS_ORC");
  EXPECT_FALSE(bench::self_chaos_orchestrator_enabled());

  setenv("EAB_CHECKPOINT_DIR", "/tmp/ckpt", 1);
  setenv("EAB_WORKERS", "3", 1);
  const auto config =
      bench::supervisor_config_from_env("sweep.journal", "fp-v1");
  EXPECT_EQ(config.checkpoint_path, "/tmp/ckpt/sweep.journal");
  EXPECT_EQ(config.fingerprint, "fp-v1");
  EXPECT_EQ(config.workers, 3);
  unsetenv("EAB_CHECKPOINT_DIR");
  unsetenv("EAB_WORKERS");
  EXPECT_TRUE(
      bench::supervisor_config_from_env("sweep.journal", "fp-v1")
          .checkpoint_path.empty());
}

TEST(EnvParsingDeathTest, MalformedSuperviseFlagDiesLoudly) {
  setenv("EAB_SUPERVISE", "yes", 1);
  EXPECT_EXIT(bench::supervise_enabled(), ::testing::ExitedWithCode(2),
              "EAB_SUPERVISE");
  unsetenv("EAB_SUPERVISE");
}

TEST(EnvParsingDeathTest, MalformedWorkerCountDiesLoudly) {
  setenv("EAB_WORKERS", "0", 1);
  EXPECT_EXIT(bench::workers_from_env(), ::testing::ExitedWithCode(2),
              "EAB_WORKERS");
  setenv("EAB_WORKERS", "2000", 1);
  EXPECT_EXIT(bench::workers_from_env(), ::testing::ExitedWithCode(2),
              "EAB_WORKERS");
  setenv("EAB_WORKERS", "two", 1);
  EXPECT_EXIT(bench::workers_from_env(), ::testing::ExitedWithCode(2),
              "EAB_WORKERS");
  unsetenv("EAB_WORKERS");
}

TEST(EnvParsingDeathTest, MalformedSelfChaosSeedDiesLoudly) {
  setenv("EAB_SELF_CHAOS", "-1", 1);
  EXPECT_EXIT(bench::self_chaos_seed_from_env(), ::testing::ExitedWithCode(2),
              "EAB_SELF_CHAOS");
  unsetenv("EAB_SELF_CHAOS");
}

TEST(EnvParsingDeathTest, OversizedSelfChaosKillsDiesLoudly) {
  setenv("EAB_SELF_CHAOS_KILLS", "65", 1);
  EXPECT_EXIT(bench::self_chaos_kills_from_env(),
              ::testing::ExitedWithCode(2), "EAB_SELF_CHAOS_KILLS");
  unsetenv("EAB_SELF_CHAOS_KILLS");
}

TEST(EnvParsingDeathTest, MalformedOrchestratorChaosFlagDiesLoudly) {
  setenv("EAB_SELF_CHAOS_ORC", "maybe", 1);
  EXPECT_EXIT(bench::self_chaos_orchestrator_enabled(),
              ::testing::ExitedWithCode(2), "EAB_SELF_CHAOS_ORC");
  unsetenv("EAB_SELF_CHAOS_ORC");
}

TEST(EnvParsing, TelemetryKnobsHonorWellFormedValues) {
  setenv("EAB_TELEMETRY", "1", 1);
  EXPECT_TRUE(bench::telemetry_enabled());
  setenv("EAB_TELEMETRY", "0", 1);
  EXPECT_FALSE(bench::telemetry_enabled());
  unsetenv("EAB_TELEMETRY");
  EXPECT_FALSE(bench::telemetry_enabled());

  setenv("EAB_TELEMETRY_TICK", "10", 1);
  EXPECT_EQ(bench::telemetry_tick_from_env(), 10.0);
  unsetenv("EAB_TELEMETRY_TICK");
  EXPECT_EQ(bench::telemetry_tick_from_env(), 5.0);

  setenv("EAB_TELEMETRY_BUDGET", "1024", 1);
  EXPECT_EQ(bench::telemetry_budget_from_env(), 1024u);
  unsetenv("EAB_TELEMETRY_BUDGET");
  EXPECT_EQ(bench::telemetry_budget_from_env(), 256u);

  setenv("EAB_PROGRESS", "1", 1);
  EXPECT_TRUE(bench::progress_enabled());
  setenv("EAB_PROGRESS", "0", 1);
  EXPECT_FALSE(bench::progress_enabled());
  unsetenv("EAB_PROGRESS");
  EXPECT_FALSE(bench::progress_enabled());
}

TEST(EnvParsingDeathTest, MalformedTelemetryFlagDiesLoudly) {
  setenv("EAB_TELEMETRY", "yes", 1);
  EXPECT_EXIT(bench::telemetry_enabled(), ::testing::ExitedWithCode(2),
              "EAB_TELEMETRY");
  unsetenv("EAB_TELEMETRY");
}

TEST(EnvParsingDeathTest, OutOfRangeTelemetryTickDiesLoudly) {
  setenv("EAB_TELEMETRY_TICK", "0", 1);
  EXPECT_EXIT(bench::telemetry_tick_from_env(), ::testing::ExitedWithCode(2),
              "EAB_TELEMETRY_TICK");
  setenv("EAB_TELEMETRY_TICK", "86401", 1);
  EXPECT_EXIT(bench::telemetry_tick_from_env(), ::testing::ExitedWithCode(2),
              "EAB_TELEMETRY_TICK");
  setenv("EAB_TELEMETRY_TICK", "5s", 1);
  EXPECT_EXIT(bench::telemetry_tick_from_env(), ::testing::ExitedWithCode(2),
              "EAB_TELEMETRY_TICK");
  unsetenv("EAB_TELEMETRY_TICK");
}

TEST(EnvParsingDeathTest, OutOfRangeTelemetryBudgetDiesLoudly) {
  setenv("EAB_TELEMETRY_BUDGET", "1", 1);
  EXPECT_EXIT(bench::telemetry_budget_from_env(),
              ::testing::ExitedWithCode(2), "EAB_TELEMETRY_BUDGET");
  setenv("EAB_TELEMETRY_BUDGET", "1048577", 1);
  EXPECT_EXIT(bench::telemetry_budget_from_env(),
              ::testing::ExitedWithCode(2), "EAB_TELEMETRY_BUDGET");
  unsetenv("EAB_TELEMETRY_BUDGET");
}

TEST(EnvParsingDeathTest, MalformedProgressFlagDiesLoudly) {
  setenv("EAB_PROGRESS", "on", 1);
  EXPECT_EXIT(bench::progress_enabled(), ::testing::ExitedWithCode(2),
              "EAB_PROGRESS");
  unsetenv("EAB_PROGRESS");
}

TEST(EnvParsing, ParseEnvF64IsStrict) {
  double out = 0;
  EXPECT_TRUE(bench::parse_env_f64("2", out));
  EXPECT_EQ(out, 2.0);
  EXPECT_TRUE(bench::parse_env_f64("0.75", out));
  EXPECT_EQ(out, 0.75);
  EXPECT_TRUE(bench::parse_env_f64("1.5e1", out));
  EXPECT_EQ(out, 15.0);
  EXPECT_FALSE(bench::parse_env_f64(nullptr, out));
  EXPECT_FALSE(bench::parse_env_f64("", out));
  EXPECT_FALSE(bench::parse_env_f64("-1", out));
  EXPECT_FALSE(bench::parse_env_f64("+1", out));
  EXPECT_FALSE(bench::parse_env_f64(".5", out));
  EXPECT_FALSE(bench::parse_env_f64(" 1", out));
  EXPECT_FALSE(bench::parse_env_f64("1 ", out));
  EXPECT_FALSE(bench::parse_env_f64("1.5s", out));
  EXPECT_FALSE(bench::parse_env_f64("0x1p4", out));
  EXPECT_FALSE(bench::parse_env_f64("inf", out));
  EXPECT_FALSE(bench::parse_env_f64("nan", out));
  EXPECT_FALSE(bench::parse_env_f64("1e999", out));
}

TEST(EnvParsing, OutageKnobsHonorWellFormedValues) {
  // All defaults: the plan is disabled and matches a default-constructed
  // one field for field.
  const radio::OutagePlan defaults = bench::outage_plan_from_env();
  EXPECT_FALSE(defaults.enabled());
  EXPECT_EQ(defaults.count, radio::OutagePlan{}.count);
  EXPECT_EQ(defaults.seed, radio::OutagePlan{}.seed);

  setenv("EAB_OUTAGE_COUNT", "3", 1);
  setenv("EAB_OUTAGE_START", "1.5", 1);
  setenv("EAB_OUTAGE_PERIOD", "8", 1);
  setenv("EAB_OUTAGE_DURATION", "2.5", 1);
  setenv("EAB_OUTAGE_FAIL_RATE", "0.25", 1);
  setenv("EAB_OUTAGE_SEED", "42", 1);
  const radio::OutagePlan plan = bench::outage_plan_from_env();
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.count, 3);
  EXPECT_EQ(plan.start, 1.5);
  EXPECT_EQ(plan.period, 8.0);
  EXPECT_EQ(plan.duration, 2.5);
  EXPECT_EQ(plan.reestablish_fail_rate, 0.25);
  EXPECT_EQ(plan.seed, 42u);
  unsetenv("EAB_OUTAGE_COUNT");
  unsetenv("EAB_OUTAGE_START");
  unsetenv("EAB_OUTAGE_PERIOD");
  unsetenv("EAB_OUTAGE_DURATION");
  unsetenv("EAB_OUTAGE_FAIL_RATE");
  unsetenv("EAB_OUTAGE_SEED");
}

TEST(EnvParsingDeathTest, MalformedOutageCountDiesLoudly) {
  setenv("EAB_OUTAGE_COUNT", "two", 1);
  EXPECT_EXIT(bench::outage_plan_from_env(), ::testing::ExitedWithCode(2),
              "EAB_OUTAGE_COUNT");
  setenv("EAB_OUTAGE_COUNT", "1001", 1);
  EXPECT_EXIT(bench::outage_plan_from_env(), ::testing::ExitedWithCode(2),
              "EAB_OUTAGE_COUNT");
  unsetenv("EAB_OUTAGE_COUNT");
}

TEST(EnvParsingDeathTest, MalformedOutageTimingDiesLoudly) {
  setenv("EAB_OUTAGE_PERIOD", "0", 1);
  EXPECT_EXIT(bench::outage_plan_from_env(), ::testing::ExitedWithCode(2),
              "EAB_OUTAGE_PERIOD");
  setenv("EAB_OUTAGE_PERIOD", "8s", 1);
  EXPECT_EXIT(bench::outage_plan_from_env(), ::testing::ExitedWithCode(2),
              "EAB_OUTAGE_PERIOD");
  unsetenv("EAB_OUTAGE_PERIOD");
  setenv("EAB_OUTAGE_DURATION", "-2", 1);
  EXPECT_EXIT(bench::outage_plan_from_env(), ::testing::ExitedWithCode(2),
              "EAB_OUTAGE_DURATION");
  unsetenv("EAB_OUTAGE_DURATION");
  setenv("EAB_OUTAGE_FAIL_RATE", "1.5", 1);
  EXPECT_EXIT(bench::outage_plan_from_env(), ::testing::ExitedWithCode(2),
              "EAB_OUTAGE_FAIL_RATE");
  unsetenv("EAB_OUTAGE_FAIL_RATE");
}

TEST(EnvParsingDeathTest, OverlappingOutageWindowsDieLoudly) {
  // period <= duration on an enabled plan: windows would overlap.
  setenv("EAB_OUTAGE_COUNT", "2", 1);
  setenv("EAB_OUTAGE_PERIOD", "2", 1);
  setenv("EAB_OUTAGE_DURATION", "3", 1);
  EXPECT_EXIT(bench::outage_plan_from_env(), ::testing::ExitedWithCode(2),
              "EAB_OUTAGE_PERIOD");
  unsetenv("EAB_OUTAGE_COUNT");
  unsetenv("EAB_OUTAGE_PERIOD");
  unsetenv("EAB_OUTAGE_DURATION");
}

TEST(Fnv1a, MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a_64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(fnv1a_64("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(fnv1a_64("foobar"), 0x85944171F73967E8ULL);
}

TEST(RunBenchmark, EmptySpecListYieldsZeroedAverages) {
  const auto avg = bench::run_benchmark(
      {}, StackConfig::for_mode(browser::PipelineMode::kOriginal));
  EXPECT_EQ(avg.tx_time, 0.0);
  EXPECT_EQ(avg.total_time, 0.0);
  EXPECT_EQ(avg.first_display, 0.0);
  EXPECT_EQ(avg.final_display, 0.0);
  EXPECT_EQ(avg.load_energy, 0.0);
  EXPECT_EQ(avg.energy_20s, 0.0);
  EXPECT_EQ(avg.dch_time, 0.0);
}

}  // namespace
}  // namespace eab::core
