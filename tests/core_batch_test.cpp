#include "core/batch.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "corpus/page_spec.hpp"
#include "util/rng.hpp"

namespace eab::core {
namespace {

/// A deliberately small page so each test load stays cheap.
corpus::PageSpec tiny_spec(int variant) {
  corpus::PageSpec spec;
  spec.site = "test.example/" + std::to_string(variant);
  spec.mobile = true;
  spec.html_bytes = kilobytes(6);
  spec.css_files = 1;
  spec.css_bytes = kilobytes(2);
  spec.css_images = 1;
  spec.js_files = 1;
  spec.js_bytes = kilobytes(2);
  spec.js_busy_iterations = 200;
  spec.js_images = 1;
  spec.html_images = 2;
  spec.image_bytes = kilobytes(3);
  spec.anchors = 4;
  spec.paragraphs = 4;
  return spec;
}

std::vector<BatchJob> sweep_jobs(int count) {
  std::vector<BatchJob> jobs;
  for (int i = 0; i < count; ++i) {
    BatchJob job;
    job.spec = tiny_spec(i % 4);
    job.config = StackConfig::for_mode(i % 2 == 0
                                           ? browser::PipelineMode::kOriginal
                                           : browser::PipelineMode::kEnergyAware);
    job.reading_window = 5.0;
    job.seed = derive_seed(99, static_cast<std::uint64_t>(i));
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void expect_identical(const SingleLoadResult& a, const SingleLoadResult& b) {
  EXPECT_EQ(a.load_energy, b.load_energy);
  EXPECT_EQ(a.energy_with_reading, b.energy_with_reading);
  EXPECT_EQ(a.metrics.total_time(), b.metrics.total_time());
  EXPECT_EQ(a.metrics.transmission_time(), b.metrics.transmission_time());
  EXPECT_EQ(a.dch_time, b.dch_time);
  EXPECT_EQ(a.fach_time, b.fach_time);
  EXPECT_EQ(a.bytes_fetched, b.bytes_fetched);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.dom_signature, b.dom_signature);
  EXPECT_EQ(a.features.to_row(), b.features.to_row());
}

TEST(BatchRunner, ParallelMatchesSerialElementwise) {
  const auto jobs = sweep_jobs(8);
  std::vector<SingleLoadResult> serial;
  for (const auto& job : jobs) {
    serial.push_back(
        run_single_load(job.spec, job.config, job.reading_window, job.seed));
  }

  BatchRunner runner(4);
  EXPECT_EQ(runner.threads(), 4);
  const auto parallel = runner.run(jobs);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial[i], parallel[i]);
  }
}

TEST(BatchRunner, MemoCacheHitsReturnIdenticalResults) {
  const auto jobs = sweep_jobs(4);
  BatchRunner runner(2);
  const auto first = runner.run(jobs);
  EXPECT_EQ(runner.cache_hits(), 0u);
  EXPECT_EQ(runner.cache_misses(), jobs.size());
  EXPECT_EQ(runner.cache_size(), jobs.size());

  const auto second = runner.run(jobs);
  EXPECT_EQ(runner.cache_hits(), jobs.size());
  EXPECT_EQ(runner.cache_misses(), jobs.size());
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(first[i], second[i]);
  }
}

TEST(BatchRunner, DuplicateJobsWithinBatchComputedOnce) {
  auto jobs = sweep_jobs(2);
  jobs.push_back(jobs[0]);  // exact duplicate of job 0
  jobs.push_back(jobs[1]);  // exact duplicate of job 1
  BatchRunner runner(2);
  const auto results = runner.run(jobs);
  EXPECT_EQ(runner.cache_misses(), 2u);  // only the distinct keys simulated
  EXPECT_EQ(runner.cache_hits(), 2u);    // duplicates served from the batch
  expect_identical(results[0], results[2]);
  expect_identical(results[1], results[3]);
}

TEST(BatchRunner, ClearCacheForcesRecomputation) {
  const auto jobs = sweep_jobs(2);
  BatchRunner runner(2);
  const auto first = runner.run(jobs);
  runner.clear_cache();
  EXPECT_EQ(runner.cache_size(), 0u);
  const auto second = runner.run(jobs);
  EXPECT_EQ(runner.cache_misses(), 2 * jobs.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    expect_identical(first[i], second[i]);
  }
}

TEST(BatchRunner, EabJobsOneDegradesToSerial) {
  ASSERT_EQ(setenv("EAB_JOBS", "1", 1), 0);
  BatchRunner runner;  // resolves from the environment
  unsetenv("EAB_JOBS");
  EXPECT_EQ(runner.threads(), 1);

  const auto jobs = sweep_jobs(4);
  const auto results = runner.run(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(i);
    const auto expected = run_single_load(jobs[i].spec, jobs[i].config,
                                          jobs[i].reading_window, jobs[i].seed);
    expect_identical(expected, results[i]);
  }
}

TEST(BatchRunner, ResolveJobsPrecedence) {
  ASSERT_EQ(setenv("EAB_JOBS", "3", 1), 0);
  EXPECT_EQ(BatchRunner::resolve_jobs(0), 3);   // env wins when unpinned
  EXPECT_EQ(BatchRunner::resolve_jobs(7), 7);   // explicit request wins
  ASSERT_EQ(setenv("EAB_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(BatchRunner::resolve_jobs(0), 1);   // garbage falls back
  unsetenv("EAB_JOBS");
  EXPECT_GE(BatchRunner::resolve_jobs(0), 1);
}

TEST(BatchRunner, EmptyBatchReturnsEmpty) {
  BatchRunner runner(2);
  EXPECT_TRUE(runner.run({}).empty());
  EXPECT_EQ(runner.cache_hits(), 0u);
  EXPECT_EQ(runner.cache_misses(), 0u);
}

TEST(BatchMemoKey, DistinguishesEveryKeyedInput) {
  BatchJob base;
  base.spec = tiny_spec(0);
  base.config = StackConfig::for_mode(browser::PipelineMode::kOriginal);
  const auto key = batch_memo_key(base);

  auto other = base;
  other.seed += 1;
  EXPECT_NE(key, batch_memo_key(other));

  other = base;
  other.reading_window += 1.0;
  EXPECT_NE(key, batch_memo_key(other));

  other = base;
  other.spec.html_bytes += 1;
  EXPECT_NE(key, batch_memo_key(other));

  other = base;
  other.config.pipeline.mode = browser::PipelineMode::kEnergyAware;
  EXPECT_NE(key, batch_memo_key(other));

  other = base;
  other.config.rrc.t1 += 0.5;
  EXPECT_NE(key, batch_memo_key(other));

  other = base;
  other.config.force_idle_at_tx = !other.config.force_idle_at_tx;
  EXPECT_NE(key, batch_memo_key(other));

  EXPECT_EQ(key, batch_memo_key(base));  // and it is deterministic
}

TEST(Fnv1a, MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a_64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(fnv1a_64("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(fnv1a_64("foobar"), 0x85944171F73967E8ULL);
}

TEST(RunBenchmark, EmptySpecListYieldsZeroedAverages) {
  const auto avg = bench::run_benchmark(
      {}, StackConfig::for_mode(browser::PipelineMode::kOriginal));
  EXPECT_EQ(avg.tx_time, 0.0);
  EXPECT_EQ(avg.total_time, 0.0);
  EXPECT_EQ(avg.first_display, 0.0);
  EXPECT_EQ(avg.final_display, 0.0);
  EXPECT_EQ(avg.load_energy, 0.0);
  EXPECT_EQ(avg.energy_20s, 0.0);
  EXPECT_EQ(avg.dch_time, 0.0);
}

}  // namespace
}  // namespace eab::core
