#include "web/css.hpp"

#include <gtest/gtest.h>

#include "web/html_parser.hpp"

namespace eab::web {
namespace {

TEST(CssScanner, FindsUrlReferences) {
  const auto urls = scan_css_urls(
      ".a { background: url(img/a.png); }\n"
      ".b { background-image: url(\"img/b.png\"); }\n"
      ".c { cursor: url('img/c.cur'); }");
  ASSERT_EQ(urls.size(), 3u);
  EXPECT_EQ(urls[0], "img/a.png");
  EXPECT_EQ(urls[1], "img/b.png");
  EXPECT_EQ(urls[2], "img/c.cur");
}

TEST(CssScanner, FindsImports) {
  const auto urls = scan_css_urls(
      "@import url(base.css);\n@import \"theme.css\";\n@import 'more.css';");
  ASSERT_EQ(urls.size(), 3u);
  EXPECT_EQ(urls[0], "base.css");
  EXPECT_EQ(urls[1], "theme.css");
  EXPECT_EQ(urls[2], "more.css");
}

TEST(CssScanner, CaseInsensitiveAndMalformedTolerant) {
  EXPECT_EQ(scan_css_urls(".x { background: URL(a.png); }").size(), 1u);
  EXPECT_TRUE(scan_css_urls("url(").empty());
  EXPECT_TRUE(scan_css_urls("@import").empty());
  EXPECT_TRUE(scan_css_urls("").empty());
}

TEST(CssParser, RulesSelectorsDeclarations) {
  const StyleSheet sheet = parse_css(
      "div.note, #top { color: red; margin: 4px; }\n"
      "p { font-size: 12px; }");
  ASSERT_EQ(sheet.rules.size(), 2u);
  EXPECT_EQ(sheet.rules[0].selectors.size(), 2u);
  EXPECT_EQ(sheet.rules[0].declarations.size(), 2u);
  EXPECT_EQ(sheet.rules[0].declarations[0].property, "color");
  EXPECT_EQ(sheet.rules[0].declarations[0].value, "red");
  EXPECT_EQ(sheet.declaration_count(), 3u);
}

TEST(CssParser, DescendantSelectorSteps) {
  const StyleSheet sheet = parse_css("div ul li.item { padding: 0; }");
  ASSERT_EQ(sheet.rules.size(), 1u);
  const CssSelector& selector = sheet.rules[0].selectors[0];
  ASSERT_EQ(selector.steps.size(), 3u);
  EXPECT_EQ(selector.steps[0].tag, "div");
  EXPECT_EQ(selector.steps[2].tag, "li");
  ASSERT_EQ(selector.steps[2].classes.size(), 1u);
  EXPECT_EQ(selector.steps[2].classes[0], "item");
  EXPECT_EQ(sheet.selector_steps(), 3u);
}

TEST(CssParser, CommentsStripped) {
  const StyleSheet sheet =
      parse_css("/* header */ .a { /* inner */ color: blue; }");
  ASSERT_EQ(sheet.rules.size(), 1u);
  EXPECT_EQ(sheet.rules[0].declarations[0].value, "blue");
}

TEST(CssParser, UrlRefsCollectedFromDeclarations) {
  const StyleSheet sheet =
      parse_css("@import url(x.css); .a { background: url(y.png); }");
  ASSERT_EQ(sheet.url_refs.size(), 2u);
  EXPECT_EQ(sheet.imports.size(), 1u);
}

TEST(CssParser, MediaBlockRulesSplicedIn) {
  const StyleSheet sheet = parse_css(
      "@media screen { .mob { width: 100%; } .two { color: red; } }\n"
      ".after { color: green; }");
  EXPECT_EQ(sheet.rules.size(), 3u);
}

TEST(CssParser, MalformedInputDoesNotThrow) {
  EXPECT_NO_THROW(parse_css("{} } { ;;; "));
  EXPECT_NO_THROW(parse_css(".a { color: "));
  EXPECT_NO_THROW(parse_css("@media screen {"));
  EXPECT_NO_THROW(parse_css("p"));
  EXPECT_EQ(parse_css("garbage without braces").rules.size(), 0u);
}

TEST(CssParser, EmptyDeclarationsSkipped) {
  const StyleSheet sheet = parse_css(".a { ; : bad ; color: red; }");
  ASSERT_EQ(sheet.rules.size(), 1u);
  EXPECT_EQ(sheet.rules[0].declarations.size(), 1u);
}

struct MatchFixture : ::testing::Test {
  ParsedHtml doc = parse_html(
      "<div class='outer'><ul id='nav'><li class='item hot'>x</li></ul></div>"
      "<p class='item'>y</p>");

  const DomNode* li() const {
    auto nodes = doc.dom.find_all("li");
    return nodes.empty() ? nullptr : nodes[0];
  }
  const DomNode* p() const {
    auto nodes = doc.dom.find_all("p");
    return nodes.empty() ? nullptr : nodes[0];
  }
};

TEST_F(MatchFixture, TagClassIdMatching) {
  const StyleSheet sheet = parse_css(
      "li { a: 1; } .item { b: 2; } #nav { c: 3; } li.hot { d: 4; } p.hot { e: 5; }");
  ASSERT_NE(li(), nullptr);
  EXPECT_TRUE(selector_matches(sheet.rules[0].selectors[0], *li()));
  EXPECT_TRUE(selector_matches(sheet.rules[1].selectors[0], *li()));
  EXPECT_FALSE(selector_matches(sheet.rules[2].selectors[0], *li()));
  EXPECT_TRUE(selector_matches(sheet.rules[3].selectors[0], *li()));
  EXPECT_FALSE(selector_matches(sheet.rules[4].selectors[0], *li()));
}

TEST_F(MatchFixture, DescendantMatchingWalksAncestors) {
  const StyleSheet sheet = parse_css(
      "div li { a: 1; } div.outer ul li { b: 2; } ul div li { c: 3; }");
  EXPECT_TRUE(selector_matches(sheet.rules[0].selectors[0], *li()));
  EXPECT_TRUE(selector_matches(sheet.rules[1].selectors[0], *li()));
  EXPECT_FALSE(selector_matches(sheet.rules[2].selectors[0], *li()));
}

TEST_F(MatchFixture, ClassWordBoundaries) {
  // 'item' must not match class='items'.
  const auto doc2 = parse_html("<p class='items'>z</p>");
  const StyleSheet sheet = parse_css(".item { a: 1; }");
  EXPECT_FALSE(
      selector_matches(sheet.rules[0].selectors[0], *doc2.dom.find_first("p")));
  EXPECT_TRUE(selector_matches(sheet.rules[0].selectors[0], *p()));
}

TEST_F(MatchFixture, MatchingDeclarationsCountsCascade) {
  const StyleSheet sheet = parse_css(
      "li { a: 1; b: 2; } .hot { c: 3; } #nowhere { d: 4; }");
  EXPECT_EQ(matching_declarations(sheet, *li()), 3u);
  EXPECT_EQ(matching_declarations(sheet, *p()), 0u);
}

TEST(CssParser, UniversalAndPseudoSelectors) {
  const StyleSheet sheet = parse_css("* { margin: 0; } a:hover { color: red; }");
  ASSERT_EQ(sheet.rules.size(), 2u);
  const auto doc = parse_html("<a href='x'>l</a>");
  EXPECT_TRUE(selector_matches(sheet.rules[0].selectors[0],
                               *doc.dom.find_first("a")));
  EXPECT_TRUE(selector_matches(sheet.rules[1].selectors[0],
                               *doc.dom.find_first("a")));
}

}  // namespace
}  // namespace eab::web
