#include "util/timeline.hpp"

#include <gtest/gtest.h>

namespace eab {
namespace {

TEST(PowerTimeline, ConstantLevelIntegratesLinearly) {
  PowerTimeline timeline(2.0);
  EXPECT_DOUBLE_EQ(timeline.energy(0, 10), 20.0);
  EXPECT_DOUBLE_EQ(timeline.energy(3, 7), 8.0);
}

TEST(PowerTimeline, StepChangeSplitsIntegral) {
  PowerTimeline timeline(1.0);
  timeline.set_power(5.0, 3.0);
  EXPECT_DOUBLE_EQ(timeline.energy(0, 10), 5.0 * 1.0 + 5.0 * 3.0);
  EXPECT_DOUBLE_EQ(timeline.energy(4, 6), 1.0 + 3.0);
}

TEST(PowerTimeline, EnergyBeyondLastChangeUsesFinalLevel) {
  PowerTimeline timeline(0.5);
  timeline.set_power(2.0, 1.5);
  EXPECT_DOUBLE_EQ(timeline.energy(100, 102), 3.0);
}

TEST(PowerTimeline, ZeroWidthWindow) {
  PowerTimeline timeline(5.0);
  EXPECT_DOUBLE_EQ(timeline.energy(3, 3), 0.0);
}

TEST(PowerTimeline, BackwardsWindowThrows) {
  PowerTimeline timeline(1.0);
  EXPECT_THROW(timeline.energy(5, 4), std::invalid_argument);
}

TEST(PowerTimeline, TimeMovingBackwardsThrows) {
  PowerTimeline timeline(1.0);
  timeline.set_power(5.0, 2.0);
  EXPECT_THROW(timeline.set_power(4.0, 1.0), std::invalid_argument);
}

TEST(PowerTimeline, SameInstantUpdateCoalesces) {
  PowerTimeline timeline(1.0);
  timeline.set_power(2.0, 5.0);
  timeline.set_power(2.0, 7.0);  // overrides at the same instant
  EXPECT_DOUBLE_EQ(timeline.current_power(), 7.0);
  EXPECT_DOUBLE_EQ(timeline.energy(2, 3), 7.0);
}

TEST(PowerTimeline, NoOpChangeIsDropped) {
  PowerTimeline timeline(1.0);
  const auto before = timeline.change_count();
  timeline.set_power(5.0, 1.0);  // same level
  EXPECT_EQ(timeline.change_count(), before);
}

TEST(PowerTimeline, AddPowerLayersDelta) {
  PowerTimeline timeline(1.0);
  timeline.add_power(2.0, 0.45);
  EXPECT_DOUBLE_EQ(timeline.current_power(), 1.45);
  timeline.add_power(4.0, -0.45);
  EXPECT_DOUBLE_EQ(timeline.current_power(), 1.0);
  EXPECT_DOUBLE_EQ(timeline.energy(0, 6), 2.0 + 2 * 1.45 + 2.0);
}

TEST(PowerTimeline, SampleProducesLevelAtEachInstant) {
  PowerTimeline timeline(1.0);
  timeline.set_power(1.0, 2.0);
  const auto samples = timeline.sample(0, 2, 0.5);
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_DOUBLE_EQ(samples[0].power, 1.0);
  EXPECT_DOUBLE_EQ(samples[1].power, 1.0);
  EXPECT_DOUBLE_EQ(samples[2].power, 2.0);  // t=1.0: new level in effect
  EXPECT_DOUBLE_EQ(samples[4].power, 2.0);
}

TEST(PowerTimeline, SampleRejectsBadStep) {
  PowerTimeline timeline(1.0);
  EXPECT_THROW(timeline.sample(0, 1, 0), std::invalid_argument);
}

TEST(PowerTimeline, SumPointwise) {
  PowerTimeline a(1.0);
  a.set_power(2.0, 3.0);
  PowerTimeline b(0.5);
  b.set_power(4.0, 1.5);
  const PowerTimeline total = PowerTimeline::sum(a, b);
  EXPECT_DOUBLE_EQ(total.energy(0, 2), 2 * 1.5);   // 1.0 + 0.5
  EXPECT_DOUBLE_EQ(total.energy(2, 4), 2 * 3.5);   // 3.0 + 0.5
  EXPECT_DOUBLE_EQ(total.energy(4, 6), 2 * 4.5);   // 3.0 + 1.5
}

TEST(PowerTimeline, SumMatchesComponentEnergies) {
  PowerTimeline a(0.15);
  PowerTimeline b(0.0);
  a.set_power(1.0, 1.25);
  b.set_power(1.5, 0.45);
  a.set_power(3.0, 0.63);
  b.set_power(4.0, 0.0);
  const PowerTimeline total = PowerTimeline::sum(a, b);
  EXPECT_NEAR(total.energy(0, 10), a.energy(0, 10) + b.energy(0, 10), 1e-9);
}

}  // namespace
}  // namespace eab
