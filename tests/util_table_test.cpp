#include "util/table.hpp"

#include <gtest/gtest.h>

namespace eab {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"bb", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header, underline, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, ColumnsAligned) {
  TextTable table({"a", "b"});
  table.add_row({"longvalue", "x"});
  const std::string out = table.render();
  // 'b' must start at the same column in header as 'x' in the row.
  const auto header_line = out.substr(0, out.find('\n'));
  const auto b_col = header_line.find('b');
  const auto row_start = out.rfind("longvalue");
  const auto row_line = out.substr(row_start, out.find('\n', row_start) - row_start);
  EXPECT_EQ(row_line.find('x'), b_col);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, ArityMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Format, FixedDecimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-1.5, 1), "-1.5");
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.27), "27.0%");
  EXPECT_EQ(format_percent(-0.015, 1), "-1.5%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace eab
