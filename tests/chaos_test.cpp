#include "chaos/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/plan.hpp"
#include "chaos/reproducer.hpp"
#include "chaos/shrink.hpp"
#include "core/batch.hpp"

namespace eab::chaos {
namespace {

bool has_domain(const std::vector<ChaosFault>& faults, ChaosDomain domain) {
  return std::any_of(faults.begin(), faults.end(), [domain](const ChaosFault& f) {
    return f.domain == domain;
  });
}

ChaosFault fault_of(ChaosDomain domain, double p0, double p1 = 0, double p2 = 0,
                    double p3 = 0) {
  ChaosFault fault;
  fault.domain = domain;
  fault.params = {p0, p1, p2, p3};
  return fault;
}

TEST(ChaosPlan, ScenarioDerivationIsDeterministic) {
  for (std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    const ChaosScenario a = make_chaos_scenario(seed);
    const ChaosScenario b = make_chaos_scenario(seed);
    EXPECT_EQ(a, b);
    EXPECT_GE(a.faults.size(), 1u);
    EXPECT_LE(a.faults.size(), 4u);
    EXPECT_LT(a.spec_index, static_cast<int>(chaos_spec_pool().size()));
  }
}

TEST(ChaosPlan, ScenariosVaryAcrossSeeds) {
  std::set<int> specs;
  std::set<int> domains;
  std::set<bool> modes;
  for (const std::uint64_t seed : chaos_seeds(7, 64)) {
    const ChaosScenario s = make_chaos_scenario(seed);
    specs.insert(s.spec_index);
    modes.insert(s.mode == browser::PipelineMode::kEnergyAware);
    for (const ChaosFault& f : s.faults) {
      domains.insert(static_cast<int>(f.domain));
    }
  }
  EXPECT_GE(specs.size(), 5u);
  EXPECT_EQ(modes.size(), 2u);
  // 64 scenarios with 1-4 atoms each should visit every fault domain.
  EXPECT_EQ(domains.size(), static_cast<std::size_t>(kChaosDomainCount));
}

TEST(ChaosPlan, AppliedFaultMixStaysValid) {
  for (const std::uint64_t seed : chaos_seeds(11, 64)) {
    const ChaosScenario s = make_chaos_scenario(seed);
    const core::BatchJob job = apply_chaos(s);
    const net::FaultPlan& plan = job.config.fault_plan;
    const double sum = plan.connection_loss_rate + plan.stall_rate +
                       plan.truncate_rate + plan.slow_first_byte_rate;
    EXPECT_LE(sum, 0.9 + 1e-12);
    if (plan.stall_rate > 0) {
      EXPECT_GT(job.config.retry.request_timeout, 0.0)
          << "stalls without a watchdog would hang the load";
    }
    EXPECT_TRUE(job.config.trace) << "the oracle needs a recording";
    // The stack assembler must accept every generated composition.
    EXPECT_NO_THROW(core::validate_fault_wiring(job.config));
  }
}

TEST(ChaosPlan, MemoKeySeparatesChaosDirectives) {
  const ChaosScenario scenario = make_chaos_scenario(3);
  core::BatchJob base = apply_chaos(scenario);
  // Re-baseline the directives so the planted values below always differ
  // from the base job, whatever atoms the seed happens to draw (growing the
  // domain list reshuffles every scenario).
  base.config.chaos = core::ChaosDirectives{};
  std::set<std::string> keys;
  keys.insert(core::batch_memo_key(base));

  core::BatchJob variant = base;
  variant.config.chaos.abort_at = 1.25;
  keys.insert(core::batch_memo_key(variant));

  variant = base;
  variant.config.chaos.ril_socket_failures = 2;
  keys.insert(core::batch_memo_key(variant));

  variant = base;
  variant.config.chaos.cache_storm_count = 3;
  keys.insert(core::batch_memo_key(variant));

  variant = base;
  variant.config.chaos.cache_storm_period = 0.7;
  keys.insert(core::batch_memo_key(variant));

  variant = base;
  variant.config.sim_event_budget = 1234;
  keys.insert(core::batch_memo_key(variant));

  EXPECT_EQ(keys.size(), 6u)
      << "jobs differing only in chaos directives must never collide";
}

TEST(ChaosReproducer, RoundTripsExactly) {
  for (const std::uint64_t seed : chaos_seeds(23, 16)) {
    const ChaosScenario scenario = make_chaos_scenario(seed);
    const std::string json = scenario_to_json(scenario);
    const ChaosScenario parsed = scenario_from_json(json);
    EXPECT_EQ(scenario, parsed) << json;
    // Replaying the reproducer reconstructs the exact batch job.
    EXPECT_EQ(core::batch_memo_key(apply_chaos(scenario)),
              core::batch_memo_key(apply_chaos(parsed)));
  }
}

TEST(ChaosReproducer, MalformedDocumentsThrow) {
  const std::string good = scenario_to_json(make_chaos_scenario(5));
  EXPECT_NO_THROW(scenario_from_json(good));
  EXPECT_THROW(scenario_from_json(""), std::runtime_error);
  EXPECT_THROW(scenario_from_json("{}"), std::runtime_error);
  EXPECT_THROW(scenario_from_json(good + "garbage"), std::runtime_error);
  EXPECT_THROW(scenario_from_json(good.substr(0, good.size() / 2)),
               std::runtime_error);

  std::string bad_mode = good;
  const auto mode_pos = bad_mode.find("\"original\"");
  if (mode_pos != std::string::npos) {
    bad_mode.replace(mode_pos, 10, "\"turbo\"");
    EXPECT_THROW(scenario_from_json(bad_mode), std::runtime_error);
  }

  ChaosScenario out_of_range = make_chaos_scenario(5);
  std::string json = scenario_to_json(out_of_range);
  const std::string needle =
      "\"spec_index\": " + std::to_string(out_of_range.spec_index);
  json.replace(json.find(needle), needle.size(), "\"spec_index\": 9999");
  EXPECT_THROW(scenario_from_json(json), std::runtime_error);

  std::string bad_domain = good;
  const auto domain_pos = bad_domain.find("\"domain\": \"");
  if (domain_pos != std::string::npos) {
    bad_domain.replace(domain_pos, 11, "\"domain\": \"x");
    EXPECT_THROW(scenario_from_json(bad_domain), std::runtime_error);
  }
}

TEST(ChaosShrink, DdminFindsMinimalFailingPair) {
  // Planted bug: the composition fails iff it contains BOTH the abort and
  // the RIL atom.  Six atoms shrink to exactly those two.
  const std::vector<ChaosFault> failing = {
      fault_of(ChaosDomain::kNetLoss, 0.1),
      fault_of(ChaosDomain::kAbort, 2.0),
      fault_of(ChaosDomain::kTimerDrift, 1.5, 0.8),
      fault_of(ChaosDomain::kRilFailure, 2),
      fault_of(ChaosDomain::kCpuSlowdown, 2.0),
      fault_of(ChaosDomain::kCacheStorm, 2, 0.5, 0.5),
  };
  int calls = 0;
  auto predicate = [&calls](const std::vector<ChaosFault>& subset) {
    ++calls;
    return has_domain(subset, ChaosDomain::kAbort) &&
           has_domain(subset, ChaosDomain::kRilFailure);
  };
  const ShrinkOutcome outcome = ddmin(failing, predicate);
  EXPECT_EQ(outcome.minimal.size(), 2u);
  EXPECT_TRUE(has_domain(outcome.minimal, ChaosDomain::kAbort));
  EXPECT_TRUE(has_domain(outcome.minimal, ChaosDomain::kRilFailure));
  EXPECT_EQ(outcome.tests, calls);
  EXPECT_GT(outcome.tests, 0);
}

TEST(ChaosShrink, SingleAtomIsAlreadyMinimal) {
  const std::vector<ChaosFault> failing = {fault_of(ChaosDomain::kNetLoss, 0.2)};
  const ShrinkOutcome outcome =
      ddmin(failing, [](const std::vector<ChaosFault>&) { return true; });
  EXPECT_EQ(outcome.minimal.size(), 1u);
  EXPECT_EQ(outcome.tests, 0);
}

TEST(ChaosSweep, DefaultOracleSurvivesSeededSweep) {
  core::BatchRunner batch(4);
  ChaosRunner runner(batch);
  const ChaosReport report = runner.sweep(chaos_seeds(2026, 48));
  EXPECT_EQ(report.scenarios, 48);
  EXPECT_EQ(report.quarantined, 0);
  EXPECT_EQ(report.failures, 0) << [&] {
    std::ostringstream out;
    for (const ChaosFinding& f : report.findings) {
      out << "seed " << f.scenario.seed << ":\n";
      for (const std::string& v : f.violations) out << "  " << v << "\n";
    }
    return out.str();
  }();
  EXPECT_EQ(report.survived, report.scenarios);
  EXPECT_DOUBLE_EQ(report.survival_rate(), 1.0);
}

TEST(ChaosSweep, SerialAndParallelSweepsAreIdentical) {
  const std::vector<std::uint64_t> seeds = chaos_seeds(99, 16);
  core::BatchRunner serial(1);
  core::BatchRunner parallel(4);
  ChaosRunner serial_runner(serial);
  ChaosRunner parallel_runner(parallel);
  const ChaosReport a = serial_runner.sweep(seeds);
  const ChaosReport b = parallel_runner.sweep(seeds);
  EXPECT_EQ(a.scenarios, b.scenarios);
  EXPECT_EQ(a.survived, b.survived);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.failures, b.failures);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].scenario, b.findings[i].scenario);
    EXPECT_EQ(a.findings[i].minimal, b.findings[i].minimal);
    EXPECT_EQ(a.findings[i].violations, b.findings[i].violations);
  }
  // The engine-wide metrics snapshot is part of the determinism contract.
  EXPECT_TRUE(serial.metrics().same_as(parallel.metrics()));
}

TEST(ChaosSweep, PlantedInvariantBugIsCaughtAndShrunk) {
  // Scenario with five atoms, two of which (abort + RIL failure) trip a
  // planted oracle bug.  The runner must flag it and shrink the reproducer
  // to at most three atoms (here: exactly the guilty pair).
  ChaosScenario scenario;
  scenario.seed = 77;
  scenario.spec_index = 0;  // a mobile page: cheap to re-run under ddmin
  scenario.mode = browser::PipelineMode::kEnergyAware;
  scenario.faults = {
      fault_of(ChaosDomain::kTimerDrift, 1.3, 0.9),
      fault_of(ChaosDomain::kAbort, 1.0),
      fault_of(ChaosDomain::kNetLoss, 0.05),
      fault_of(ChaosDomain::kRilFailure, 1),
      fault_of(ChaosDomain::kCpuSlowdown, 1.5),
  };

  core::BatchRunner batch(2);
  ChaosRunner runner(batch);
  runner.set_oracle([](const core::BatchJob& job,
                       const core::SingleLoadResult& result) {
    std::vector<std::string> violations =
        default_chaos_oracle(job, result);
    if (job.config.chaos.abort_at > 0 &&
        job.config.chaos.ril_socket_failures > 0) {
      violations.push_back("planted: abort composed with RIL failure");
    }
    return violations;
  });

  const ChaosFinding finding = runner.shrink(scenario);
  ASSERT_FALSE(finding.violations.empty());
  EXPECT_LE(finding.minimal.faults.size(), 3u);
  EXPECT_TRUE(has_domain(finding.minimal.faults, ChaosDomain::kAbort));
  EXPECT_TRUE(has_domain(finding.minimal.faults, ChaosDomain::kRilFailure));
  EXPECT_GT(finding.shrink_tests, 0);

  // The shrunk reproducer replays: it still fails, and it survives a JSON
  // round trip bit-for-bit.
  EXPECT_FALSE(runner.check(finding.minimal).empty());
  const ChaosScenario replayed =
      scenario_from_json(finding.reproducer_json());
  EXPECT_EQ(replayed, finding.minimal);
  EXPECT_FALSE(runner.check(replayed).empty());
}

TEST(ChaosSweep, BudgetExhaustedLoadIsQuarantinedNotHung) {
  core::BatchJob job = apply_chaos(make_chaos_scenario(4));
  job.config.sim_event_budget = 50;  // far below any real load
  core::BatchRunner batch(1);
  const std::vector<core::SingleLoadResult> results = batch.run({job});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(batch.last_errors().size(), 1u);
  const core::JobError& error = batch.last_errors()[0];
  EXPECT_EQ(error.index, 0u);
  EXPECT_NE(error.what.find("event budget exhausted"), std::string::npos)
      << error.what;
  EXPECT_NE(error.what.find("pending heap"), std::string::npos)
      << "the diagnostic dump names what was still scheduled";
  EXPECT_EQ(error.seed, job.seed);
}

TEST(ChaosCorpus, CheckedInReproducersReplayClean) {
  // Every reproducer in tests/chaos_corpus documents a composition that
  // once looked suspicious (or regressed); replaying them must stay
  // violation-free under the default oracle.
  const std::filesystem::path dir(EAB_CHAOS_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());

  core::BatchRunner batch(2);
  ChaosRunner runner(batch);
  for (const auto& file : files) {
    std::ifstream in(file);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const ChaosScenario scenario = scenario_from_json(buffer.str());
    const std::vector<std::string> violations = runner.check(scenario);
    EXPECT_TRUE(violations.empty()) << file << ": " << [&] {
      std::string joined;
      for (const std::string& v : violations) joined += v + "\n";
      return joined;
    }();
  }
}

}  // namespace
}  // namespace eab::chaos
