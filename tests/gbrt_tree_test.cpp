#include "gbrt/tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace eab::gbrt {
namespace {

Dataset step_data() {
  // y = 0 for x < 5, y = 10 for x >= 5; plenty of samples per side.
  Dataset data(1);
  for (int i = 0; i < 20; ++i) {
    data.add({static_cast<double>(i)}, i < 5 ? 0.0 : 10.0);
  }
  return data;
}

TEST(Dataset, BasicAccess) {
  Dataset data(2);
  data.add({1.0, 2.0}, 3.0);
  data.add({4.0, 5.0}, 6.0);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.feature_count(), 2u);
  EXPECT_DOUBLE_EQ(data.target(1), 6.0);
  EXPECT_EQ(data.column(1), (std::vector<double>{2.0, 5.0}));
  EXPECT_THROW(data.add({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(data.column(5), std::out_of_range);
}

TEST(Dataset, SplitIsPositional) {
  Dataset data(1);
  for (int i = 0; i < 10; ++i) data.add({static_cast<double>(i)}, i);
  const auto [train, test] = data.split(0.7);
  EXPECT_EQ(train.size(), 7u);
  EXPECT_EQ(test.size(), 3u);
  EXPECT_DOUBLE_EQ(test.target(0), 7.0);
}

TEST(Dataset, FeatureNames) {
  Dataset data;
  data.set_feature_names({"a", "b"});
  EXPECT_EQ(data.feature_count(), 2u);
  EXPECT_THROW(data.add({1.0}, 0.0), std::invalid_argument);
}

TEST(RegressionTree, FindsObviousSplit) {
  const Dataset data = step_data();
  TreeParams params;
  params.max_leaves = 2;
  const RegressionTree tree = RegressionTree::fit(data, data.targets(), params);
  EXPECT_EQ(tree.leaf_count(), 2u);
  EXPECT_DOUBLE_EQ(tree.predict({0.0}), 0.0);
  EXPECT_DOUBLE_EQ(tree.predict({19.0}), 10.0);
  EXPECT_DOUBLE_EQ(tree.predict({4.0}), 0.0);
  EXPECT_DOUBLE_EQ(tree.predict({5.0}), 10.0);
}

TEST(RegressionTree, SingleLeafPredictsMean) {
  Dataset data(1);
  data.add({1.0}, 2.0);
  data.add({2.0}, 4.0);
  TreeParams params;
  params.max_leaves = 1;
  const RegressionTree tree = RegressionTree::fit(data, data.targets(), params);
  EXPECT_DOUBLE_EQ(tree.predict({1.0}), 3.0);
  EXPECT_EQ(tree.leaf_count(), 1u);
}

TEST(RegressionTree, RespectsMinSamplesLeaf) {
  Dataset data(1);
  for (int i = 0; i < 8; ++i) data.add({static_cast<double>(i)}, i == 0 ? 100.0 : 0.0);
  TreeParams params;
  params.max_leaves = 8;
  params.min_samples_leaf = 3;
  const RegressionTree tree = RegressionTree::fit(data, data.targets(), params);
  // No leaf may hold fewer than 3 samples, so the lone outlier cannot be
  // isolated: at most floor(8/3)=2 leaves.
  EXPECT_LE(tree.leaf_count(), 2u);
}

TEST(RegressionTree, ConstantTargetsYieldSingleLeaf) {
  Dataset data(1);
  for (int i = 0; i < 10; ++i) data.add({static_cast<double>(i)}, 7.0);
  TreeParams params;
  const RegressionTree tree = RegressionTree::fit(data, data.targets(), params);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict({3.0}), 7.0);
}

TEST(RegressionTree, PicksMostInformativeFeature) {
  // Feature 1 is pure noise; feature 0 carries the signal.
  Rng rng(1);
  Dataset data(2);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0, 10);
    data.add({x, rng.uniform(0, 10)}, x < 5 ? -1.0 : 1.0);
  }
  TreeParams params;
  params.max_leaves = 2;
  const RegressionTree tree = RegressionTree::fit(data, data.targets(), params);
  EXPECT_GT(tree.split_gains()[0], 0.0);
  EXPECT_DOUBLE_EQ(tree.split_gains()[1], 0.0);
}

TEST(RegressionTree, BestFirstGrowthReducesSse) {
  Rng rng(2);
  Dataset data(1);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(0, 10);
    data.add({x}, std::sin(x));
  }
  auto sse = [&](const RegressionTree& tree) {
    double total = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double diff = tree.predict(data.row(i)) - data.target(i);
      total += diff * diff;
    }
    return total;
  };
  double previous = 1e300;
  for (std::size_t leaves : {1u, 2u, 4u, 8u, 16u}) {
    TreeParams params;
    params.max_leaves = leaves;
    const double error = sse(RegressionTree::fit(data, data.targets(), params));
    EXPECT_LE(error, previous + 1e-9);
    previous = error;
  }
}

TEST(RegressionTree, FitValidatesArguments) {
  Dataset data(1);
  data.add({1.0}, 1.0);
  TreeParams params;
  EXPECT_THROW(RegressionTree::fit(data, {1.0, 2.0}, params),
               std::invalid_argument);
  EXPECT_THROW(RegressionTree::fit(Dataset(1), {}, params),
               std::invalid_argument);
  params.max_leaves = 0;
  EXPECT_THROW(RegressionTree::fit(data, data.targets(), params),
               std::invalid_argument);
}

TEST(RegressionTree, SerializeRoundTrip) {
  const Dataset data = step_data();
  TreeParams params;
  params.max_leaves = 4;
  const RegressionTree tree = RegressionTree::fit(data, data.targets(), params);
  const RegressionTree parsed = RegressionTree::parse(tree.serialize());
  for (double x = -1; x < 21; x += 0.5) {
    EXPECT_DOUBLE_EQ(parsed.predict({x}), tree.predict({x}));
  }
}

TEST(RegressionTree, ParseRejectsGarbage) {
  EXPECT_THROW(RegressionTree::parse(""), std::invalid_argument);
  EXPECT_THROW(RegressionTree::parse("not a tree"), std::invalid_argument);
  EXPECT_THROW(RegressionTree::parse("0:1.5:99:100:0.0;"),
               std::invalid_argument);  // child out of range
}

TEST(RegressionTree, ConstantFactory) {
  const RegressionTree tree = RegressionTree::constant(3.5);
  EXPECT_DOUBLE_EQ(tree.predict({1, 2, 3}), 3.5);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(RegressionTree, RandomStructureHasRequestedShape) {
  const RegressionTree tree = RegressionTree::random_structure(10, 4, 123);
  EXPECT_EQ(tree.leaf_count(), 4u);
  EXPECT_EQ(tree.node_count(), 7u);  // 4 leaves -> 3 internal
  // Deterministic in the seed.
  const RegressionTree again = RegressionTree::random_structure(10, 4, 123);
  EXPECT_EQ(again.serialize(), tree.serialize());
  EXPECT_THROW(RegressionTree::random_structure(0, 4, 1), std::invalid_argument);
}

// Parameterized sweep: trees never exceed the leaf budget and always
// round-trip through serialization.
class TreeShapeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeShapeSweep, LeafBudgetAndRoundTrip) {
  Rng rng(GetParam());
  Dataset data(3);
  for (int i = 0; i < 150; ++i) {
    const double a = rng.uniform(-1, 1);
    const double b = rng.uniform(-1, 1);
    const double c = rng.uniform(-1, 1);
    data.add({a, b, c}, a * 2 + b * b - c + rng.normal(0, 0.1));
  }
  TreeParams params;
  params.max_leaves = GetParam();
  const RegressionTree tree = RegressionTree::fit(data, data.targets(), params);
  EXPECT_LE(tree.leaf_count(), GetParam());
  EXPECT_GE(tree.leaf_count(), 1u);
  const RegressionTree parsed = RegressionTree::parse(tree.serialize());
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> x = {rng.uniform(-1, 1), rng.uniform(-1, 1),
                                   rng.uniform(-1, 1)};
    EXPECT_DOUBLE_EQ(parsed.predict(x), tree.predict(x));
  }
}

INSTANTIATE_TEST_SUITE_P(LeafBudgets, TreeShapeSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32));

}  // namespace
}  // namespace eab::gbrt
