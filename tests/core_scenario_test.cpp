// ScenarioBuilder: the unified assembly path for every experiment.
//
// The builder must be a drop-in for the two legacy construction idioms —
// StackConfig{} and StackConfig::for_mode — byte for byte (the memo key is
// a canonical serialization of every StackConfig field, so key equality is
// field-by-field equality), and its build()-time validation must reject the
// contradictory-knob combinations that used to surface as hangs or silent
// no-ops deep inside a run.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/batch.hpp"
#include "core/scenario.hpp"
#include "corpus/page_spec.hpp"

namespace eab::core {
namespace {

std::string key_of(const StackConfig& config) {
  BatchJob job;
  job.spec = corpus::m_cnn_spec();
  job.config = config;
  return batch_memo_key(job);
}

TEST(ScenarioBuilder, DefaultsMatchDefaultStackConfig) {
  // The canonical serialization covers every StackConfig field: equal keys
  // mean the builder reproduces the pre-builder defaults exactly.
  EXPECT_EQ(key_of(ScenarioBuilder().build().stack), key_of(StackConfig{}));
}

TEST(ScenarioBuilder, ModeMatchesForMode) {
  for (const auto mode : {browser::PipelineMode::kOriginal,
                          browser::PipelineMode::kEnergyAware}) {
    EXPECT_EQ(key_of(ScenarioBuilder(mode).build().stack),
              key_of(StackConfig::for_mode(mode)));
  }
  // Energy-aware couples fast dormancy on; Original leaves it off.
  EXPECT_TRUE(ScenarioBuilder(browser::PipelineMode::kEnergyAware)
                  .build()
                  .stack.force_idle_at_tx);
  EXPECT_FALSE(ScenarioBuilder(browser::PipelineMode::kOriginal)
                   .build()
                   .stack.force_idle_at_tx);
}

TEST(ScenarioBuilder, DefaultRunParameters) {
  const Scenario scenario = ScenarioBuilder().build();
  EXPECT_DOUBLE_EQ(scenario.reading_window, 20.0);
  EXPECT_EQ(scenario.seed, 1u);
}

TEST(ScenarioBuilder, RunSingleEqualsLegacyFreeFunction) {
  // The fig10 regression in miniature: the builder path and the legacy
  // wrapper must produce bit-identical results.
  const corpus::PageSpec page = corpus::m_cnn_spec();
  for (const auto mode : {browser::PipelineMode::kOriginal,
                          browser::PipelineMode::kEnergyAware}) {
    const SingleLoadResult via_builder =
        ScenarioBuilder(mode).build().run_single(page);
    const SingleLoadResult via_legacy =
        run_single_load(page, StackConfig::for_mode(mode));
    EXPECT_EQ(via_builder.energy.load_j, via_legacy.energy.load_j);
    EXPECT_EQ(via_builder.energy.with_reading_j,
              via_legacy.energy.with_reading_j);
    EXPECT_EQ(via_builder.energy.radio_j, via_legacy.energy.radio_j);
    EXPECT_EQ(via_builder.energy.window_s, via_legacy.energy.window_s);
    EXPECT_EQ(via_builder.sim_events, via_legacy.sim_events);
    EXPECT_EQ(via_builder.dom_signature, via_legacy.dom_signature);
  }
}

TEST(ScenarioBuilder, RejectsZeroEventBudget) {
  EXPECT_THROW(ScenarioBuilder().sim_event_budget(0).build(),
               std::invalid_argument);
}

TEST(ScenarioBuilder, RejectsStallsWithoutWatchdog) {
  net::FaultPlan plan;
  plan.stall_rate = 0.1;
  EXPECT_THROW(ScenarioBuilder().fault_plan(plan).build(),
               std::invalid_argument);
  // Arming the watchdog makes the same plan valid.
  net::RetryPolicy retry;
  retry.request_timeout = 4.0;
  EXPECT_NO_THROW(ScenarioBuilder().fault_plan(plan).retry(retry).build());
}

TEST(ScenarioBuilder, RejectsCacheStormWithoutCache) {
  ChaosDirectives chaos;
  chaos.cache_storm_count = 2;
  EXPECT_THROW(ScenarioBuilder().chaos(chaos).build(), std::invalid_argument);
  EXPECT_NO_THROW(
      ScenarioBuilder().browser_cache(1 << 20).chaos(chaos).build());
}

TEST(ScenarioBuilder, RejectsNonsenseKnobs) {
  EXPECT_THROW(ScenarioBuilder().max_parallel_connections(0).build(),
               std::invalid_argument);
  EXPECT_THROW(ScenarioBuilder().reading_window(-1.0).build(),
               std::invalid_argument);
  ChaosDirectives chaos;
  chaos.abort_at = -2.0;
  EXPECT_THROW(ScenarioBuilder().chaos(chaos).build(), std::invalid_argument);
  net::RetryPolicy retry;
  retry.max_retries = -1;
  EXPECT_THROW(ScenarioBuilder().retry(retry).build(), std::invalid_argument);
}

TEST(ScenarioBuilder, LegacyWrappersValidateToo) {
  // run_single_load routes through build(): the same contradictory config
  // is rejected no matter which entry point assembled it.
  StackConfig config;
  config.sim_event_budget = 0;
  EXPECT_THROW(run_single_load(corpus::m_cnn_spec(), config),
               std::invalid_argument);
}

TEST(ScenarioBuilder, BuildSessionUnifiesRilDirective) {
  ChaosDirectives chaos;
  chaos.ril_socket_failures = 3;
  const SessionConfig session = ScenarioBuilder()
                                    .chaos(chaos)
                                    .build_session(SessionPolicy::kAccurate);
  EXPECT_EQ(session.policy, SessionPolicy::kAccurate);
  EXPECT_EQ(session.ril_socket_failures, 3);
  EXPECT_EQ(key_of(session.stack),
            key_of(ScenarioBuilder().chaos(chaos).build().stack));
}

TEST(EnergyReport, ToJsonIsDeterministicAndExact) {
  EnergyReport report;
  report.load_j = 15.25;
  report.with_reading_j = 27.125;
  report.radio_j = 11.0625;
  report.window_s = 31.5;
  const std::string json =
      "{\"load_j\":15.25,\"with_reading_j\":27.125,\"radio_j\":11.0625,"
      "\"window_s\":31.5}";
  EXPECT_EQ(report.to_json(), json);
  EXPECT_EQ(report.to_json(), report.to_json());
}

TEST(EnergyReport, MeasureIntegratesBothTimelines) {
  PowerTimeline total;
  total.set_power(0.0, 2.0);   // 2 W from t=0
  total.set_power(10.0, 1.0);  // 1 W from t=10
  PowerTimeline radio;
  radio.set_power(0.0, 0.5);
  const EnergyReport report = EnergyReport::measure(total, radio, 10.0, 20.0);
  EXPECT_DOUBLE_EQ(report.load_j, 20.0);
  EXPECT_DOUBLE_EQ(report.with_reading_j, 30.0);
  EXPECT_DOUBLE_EQ(report.radio_j, 10.0);
  EXPECT_DOUBLE_EQ(report.window_s, 20.0);
  EXPECT_THROW(EnergyReport::measure(total, radio, 5.0, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace eab::core
