#include "core/controller.hpp"

#include <gtest/gtest.h>

namespace eab::core {
namespace {

TEST(Controller, DelayDrivenSwitchesOnlyAboveTd) {
  ControllerParams params;
  params.mode = DecisionMode::kDelayDriven;
  EnergyAwareController controller(params);
  EXPECT_FALSE(controller.should_switch(5.0));
  EXPECT_FALSE(controller.should_switch(10.0));   // > Tp but delay-driven
  EXPECT_FALSE(controller.should_switch(20.0));   // boundary: not strictly >
  EXPECT_TRUE(controller.should_switch(20.1));
  EXPECT_TRUE(controller.should_switch(600.0));
}

TEST(Controller, PowerDrivenSwitchesAboveTp) {
  ControllerParams params;
  params.mode = DecisionMode::kPowerDriven;
  EnergyAwareController controller(params);
  EXPECT_FALSE(controller.should_switch(8.9));
  EXPECT_FALSE(controller.should_switch(9.0));    // boundary
  EXPECT_TRUE(controller.should_switch(9.1));
  EXPECT_TRUE(controller.should_switch(25.0));
}

TEST(Controller, CustomThresholds) {
  ControllerParams params;
  params.tp = 5.0;
  params.td = 12.0;
  params.mode = DecisionMode::kPowerDriven;
  EnergyAwareController controller(params);
  EXPECT_TRUE(controller.should_switch(6.0));
  params.mode = DecisionMode::kDelayDriven;
  EnergyAwareController delay_controller(params);
  EXPECT_FALSE(delay_controller.should_switch(6.0));
  EXPECT_TRUE(delay_controller.should_switch(13.0));
}

TEST(Controller, PaperDefaultsMatchTable2) {
  const ControllerParams params;
  EXPECT_DOUBLE_EQ(params.alpha, 2.0);
  EXPECT_DOUBLE_EQ(params.td, 20.0);  // T1 + T2 + 1... the paper's 20 s
  EXPECT_DOUBLE_EQ(params.tp, 9.0);   // Fig 3 crossover
}

TEST(ReadingPredictor, LogDomainConversion) {
  // A model that always outputs ln(30) should predict 30 s in log mode and
  // ln(30) s in raw mode.
  const auto model =
      gbrt::GbrtModel::assemble(std::log(30.0), 1.0, {});
  browser::PageFeatures features;

  ReadingPredictor log_predictor{&model, true};
  EXPECT_NEAR(log_predictor.predict_seconds(features), 30.0, 1e-9);

  ReadingPredictor raw_predictor{&model, false};
  EXPECT_NEAR(raw_predictor.predict_seconds(features), std::log(30.0), 1e-9);
}

TEST(Controller, PredictsThroughPredictor) {
  const auto model = gbrt::GbrtModel::assemble(std::log(50.0), 1.0, {});
  ReadingPredictor predictor{&model, true};
  EnergyAwareController controller(ControllerParams{});
  browser::PageFeatures features;
  const Seconds predicted =
      controller.predict_reading_time(predictor, features);
  EXPECT_NEAR(predicted, 50.0, 1e-9);
  EXPECT_TRUE(controller.should_switch(predicted));
}

}  // namespace
}  // namespace eab::core
