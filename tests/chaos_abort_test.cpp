// User-abort robustness: abort a load at every fetch-settle boundary (plus
// one mid-first-fetch instant) under both pipelines and assert the teardown
// leaves no residue anywhere in the stack — no queued or in-flight fetches,
// no live link flows, no leaked RRC transfer markers — and that the trace
// auditor accepts the partial recording, energy reconciliation included.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "browser/cpu.hpp"
#include "browser/pipeline.hpp"
#include "core/ril.hpp"
#include "corpus/generator.hpp"
#include "net/http_client.hpp"
#include "net/shared_link.hpp"
#include "net/web_server.hpp"
#include "obs/audit.hpp"
#include "obs/trace.hpp"
#include "radio/rrc.hpp"
#include "sim/simulator.hpp"

namespace eab {
namespace {

corpus::PageSpec abort_spec() {
  corpus::PageSpec spec;
  spec.site = "abort.example";
  spec.mobile = false;
  spec.html_bytes = kilobytes(10);
  spec.css_files = 2;
  spec.css_bytes = kilobytes(3);
  spec.css_images = 2;
  spec.css_image_bytes = kilobytes(2);
  spec.js_files = 2;
  spec.js_bytes = kilobytes(2);
  spec.js_busy_iterations = 300;
  spec.js_images = 1;
  spec.js_image_bytes = kilobytes(2);
  spec.html_images = 6;
  spec.image_bytes = kilobytes(4);
  spec.anchors = 6;
  spec.paragraphs = 8;
  return spec;
}

/// The full single-load stack, held open so the test can inspect every
/// layer after teardown.
struct Stack {
  sim::Simulator sim;
  net::WebServer server;
  radio::RrcConfig rrc_config;
  radio::RadioPowerModel power;
  radio::LinkConfig link_config;
  radio::RrcMachine rrc;
  net::SharedLink link;
  net::HttpClient client;
  browser::CpuScheduler cpu;
  core::RilStateSwitcher ril;
  obs::TraceRecorder trace;
  browser::PageLoad load;
  std::string url;
  int done_count = 0;
  browser::LoadMetrics metrics;

  explicit Stack(browser::PipelineMode mode)
      : rrc(sim, rrc_config, power),
        link(sim, link_config.dch_bandwidth),
        client(sim, server, link, rrc, link_config),
        cpu(sim, power.cpu_busy_extra),
        ril(sim, rrc),
        load(sim, client, cpu,
             [mode] {
               browser::PipelineConfig config;
               config.mode = mode;
               return config;
             }(),
             1234) {
    corpus::PageGenerator generator(1);
    url = generator.host_page(abort_spec(), server);
    if (mode == browser::PipelineMode::kEnergyAware) {
      load.set_on_transmission_complete([this] { ril.request_idle(); });
    }
    rrc.set_trace(&trace);
    link.set_trace(&trace);
    client.set_trace(&trace);
    ril.set_trace(&trace);
    load.set_trace(&trace);
  }

  void start() {
    load.start(url, [this](const browser::LoadMetrics& m) {
      ++done_count;
      metrics = m;
    });
  }

  void run_to_done() {
    while (done_count == 0 && sim.step()) {
    }
    ASSERT_EQ(done_count, 1);
  }
};

/// Abort instants for one mode: just inside the first fetch, then a hair
/// after every distinct fetch-settle time of a clean reference run.
const std::vector<Seconds>& boundaries_for(browser::PipelineMode mode) {
  static std::map<browser::PipelineMode, std::vector<Seconds>> cache;
  auto it = cache.find(mode);
  if (it != cache.end()) return it->second;

  Stack reference(mode);
  reference.start();
  reference.run_to_done();
  std::vector<Seconds> times = {0.05};
  for (const obs::TraceEvent& e : reference.trace.events()) {
    if (e.kind == obs::TraceKind::kHttpFetchSettled) {
      times.push_back(e.t + 1e-6);
    }
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return cache.emplace(mode, std::move(times)).first->second;
}

class AbortAtBoundary : public ::testing::TestWithParam<int> {};

TEST_P(AbortAtBoundary, TeardownLeavesNoResidue) {
  const int index = GetParam();
  bool exercised = false;
  for (const browser::PipelineMode mode :
       {browser::PipelineMode::kOriginal, browser::PipelineMode::kEnergyAware}) {
    const std::vector<Seconds>& boundaries = boundaries_for(mode);
    if (index >= static_cast<int>(boundaries.size())) continue;
    exercised = true;
    const Seconds abort_at = boundaries[static_cast<std::size_t>(index)];

    Stack stack(mode);
    stack.start();
    stack.sim.schedule_at(abort_at, [&stack] { stack.load.abort(); });
    stack.run_to_done();

    // Clean teardown across every layer, aborted or (for the last
    // boundaries, where the load wins the race) completed.
    EXPECT_EQ(stack.client.queued(), 0u);
    EXPECT_EQ(stack.client.in_flight(), 0);
    EXPECT_EQ(stack.link.active_flows(), 0u);
    EXPECT_EQ(stack.rrc.active_transfers(), 0);
    if (stack.metrics.aborted) {
      EXPECT_NEAR(stack.metrics.aborted_at, abort_at, 1e-9);
      EXPECT_NEAR(stack.metrics.final_display, abort_at, 1e-9);
      EXPECT_LE(stack.metrics.first_display, stack.metrics.final_display);
    } else {
      EXPECT_LE(stack.metrics.final_display, abort_at + 1e-9)
          << "an unaborted load must have finished before the abort";
    }
    EXPECT_EQ(stack.done_count, 1) << "done must fire exactly once";

    // Let the radio timers drain, then replay the partial trace through
    // the cross-layer auditor: marker balance, queued==settled and energy
    // reconciliation must all hold on the truncated event stream.
    const Seconds t_end = stack.metrics.final_display + 25.0;
    stack.sim.run_until(t_end);
    obs::AuditInputs inputs;
    inputs.rrc = stack.rrc_config;
    inputs.power = stack.power;
    inputs.max_retries = stack.client.retry_policy().max_retries;
    inputs.radio_energy = stack.rrc.power().energy(0.0, t_end);
    inputs.t_end = t_end;
    const obs::AuditReport report =
        obs::TraceAuditor().audit(stack.trace, inputs);
    EXPECT_TRUE(report.ok())
        << "mode=" << static_cast<int>(mode) << " abort_at=" << abort_at
        << "\n" << report.summary();
  }
  if (!exercised) {
    GTEST_SKIP() << "no fetch boundary with index " << index;
  }
}

INSTANTIATE_TEST_SUITE_P(EveryFetchBoundary, AbortAtBoundary,
                         ::testing::Range(0, 28));

TEST(AbortBasics, AbortBeforeStartAndAfterFinishAreNoOps) {
  Stack stack(browser::PipelineMode::kOriginal);
  EXPECT_FALSE(stack.load.abort()) << "never-started load";
  stack.start();
  stack.run_to_done();
  EXPECT_FALSE(stack.load.abort()) << "already-finished load";
  EXPECT_EQ(stack.done_count, 1);
  EXPECT_FALSE(stack.metrics.aborted);
}

TEST(AbortBasics, AbortedMetricsAccountPartialWork) {
  // Abort just after the second fetch settles: the document body has landed
  // (bytes > 0) and the discovered sub-resources are still queued/in-flight,
  // so abort() tears them down and books them as failed.
  const std::vector<Seconds>& boundaries =
      boundaries_for(browser::PipelineMode::kOriginal);
  ASSERT_GE(boundaries.size(), 3u);
  const Seconds abort_at = boundaries[2];

  Stack stack(browser::PipelineMode::kOriginal);
  stack.start();
  stack.sim.schedule_at(abort_at, [&stack] { stack.load.abort(); });
  stack.run_to_done();
  ASSERT_TRUE(stack.metrics.aborted);
  // Partial accounting: whatever settled before the abort is preserved and
  // the torn-down fetches are counted as failed resources.
  EXPECT_GE(stack.metrics.objects_fetched, 1);
  EXPECT_GT(stack.metrics.bytes_fetched, 0u);
  EXPECT_GE(stack.metrics.failed_resources, 1)
      << "fetches in flight at the abort settle as failed (kAborted)";
  EXPECT_NEAR(stack.metrics.total_time(), abort_at, 1e-9);
}

}  // namespace
}  // namespace eab
