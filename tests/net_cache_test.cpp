#include "net/cache.hpp"

#include <gtest/gtest.h>

#include "core/session.hpp"

namespace eab::net {
namespace {

Resource image(const std::string& url, Bytes size) {
  Resource resource;
  resource.url = url;
  resource.kind = ResourceKind::kImage;
  resource.size = size;
  return resource;
}

TEST(ResourceCache, HitAfterInsert) {
  ResourceCache cache(1000);
  cache.insert(image("a", 100));
  const Resource* hit = cache.lookup("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size, 100u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.lookup("b"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResourceCache, DocumentsAreNeverCached) {
  ResourceCache cache(1000);
  Resource html;
  html.url = "page";
  html.kind = ResourceKind::kHtml;
  html.size = 10;
  cache.insert(html);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_FALSE(ResourceCache::cacheable(ResourceKind::kHtml));
  EXPECT_FALSE(ResourceCache::cacheable(ResourceKind::kOther));
  EXPECT_TRUE(ResourceCache::cacheable(ResourceKind::kCss));
  EXPECT_TRUE(ResourceCache::cacheable(ResourceKind::kImage));
}

TEST(ResourceCache, EvictsLeastRecentlyUsed) {
  ResourceCache cache(300);
  cache.insert(image("a", 100));
  cache.insert(image("b", 100));
  cache.insert(image("c", 100));
  // Touch "a" so "b" is the LRU victim.
  EXPECT_NE(cache.lookup("a"), nullptr);
  cache.insert(image("d", 100));
  EXPECT_NE(cache.lookup("a"), nullptr);
  EXPECT_EQ(cache.lookup("b"), nullptr);
  EXPECT_NE(cache.lookup("c"), nullptr);
  EXPECT_NE(cache.lookup("d"), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_LE(cache.used(), cache.capacity());
}

TEST(ResourceCache, OversizedResourceIgnored) {
  ResourceCache cache(100);
  cache.insert(image("big", 500));
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(ResourceCache, ReinsertReplacesAndAccountsBytes) {
  ResourceCache cache(1000);
  cache.insert(image("a", 100));
  cache.insert(image("a", 300));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.used(), 300u);
  EXPECT_EQ(cache.lookup("a")->size, 300u);
}

TEST(ResourceCache, ClearResetsContents) {
  ResourceCache cache(1000);
  cache.insert(image("a", 100));
  cache.clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.used(), 0u);
  EXPECT_EQ(cache.lookup("a"), nullptr);
}

TEST(ResourceCache, ZeroCapacityRejected) {
  EXPECT_THROW(ResourceCache(0), std::invalid_argument);
}

TEST(ResourceCache, ManyInsertionsStayWithinCapacity) {
  ResourceCache cache(10'000);
  for (int i = 0; i < 500; ++i) {
    cache.insert(image("r" + std::to_string(i), 333));
  }
  EXPECT_LE(cache.used(), cache.capacity());
  EXPECT_GT(cache.evictions(), 400u);
}

TEST(CachedSession, RevisitSkipsTransfersAndSavesEnergy) {
  const corpus::PageSpec page = corpus::espn_sports_spec();
  const std::vector<core::PageVisit> visits = {{&page, 20.0}, {&page, 20.0}};

  core::SessionConfig cold;
  cold.policy = core::SessionPolicy::kBaseline;
  core::SessionConfig warm = cold;
  warm.stack.use_browser_cache = true;

  const auto without = core::run_session(visits, cold, 1);
  const auto with_cache = core::run_session(visits, warm, 1);

  // The second page's subresources come from cache: faster and cheaper.
  EXPECT_LT(with_cache.total_load_delay, without.total_load_delay);
  EXPECT_LT(with_cache.energy.with_reading_j, without.energy.with_reading_j);
  ASSERT_EQ(with_cache.page_load_times.size(), 2u);
  EXPECT_LT(with_cache.page_load_times[1], with_cache.page_load_times[0]);
  // Without the cache the revisit repeats the first load exactly.
  EXPECT_NEAR(without.page_load_times[1], without.page_load_times[0], 0.5);
}

TEST(CachedSession, CacheComposesWithEnergyAwarePipeline) {
  const corpus::PageSpec page = corpus::espn_sports_spec();
  const std::vector<core::PageVisit> visits = {{&page, 25.0}, {&page, 25.0}};
  core::SessionConfig config;
  config.policy = core::SessionPolicy::kAccurate;
  config.threshold = 9.0;
  config.stack.use_browser_cache = true;
  const auto result = core::run_session(visits, config, 1);
  ASSERT_EQ(result.page_load_times.size(), 2u);
  EXPECT_LT(result.page_load_times[1], result.page_load_times[0]);
}

}  // namespace
}  // namespace eab::net
