// The unified sweep driver: consume order and payloads are bit-identical
// across the serial, thread-pooled and supervised tiers; the supervised
// tier demands a codec; shard exceptions propagate in index order.
#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace eab::core {
namespace {

struct Point {
  std::uint64_t index = 0;
  std::uint64_t value = 0;
};

SweepDriver<Point> point_driver(std::vector<Point>* out) {
  SweepDriver<Point> driver;
  driver
      .shard([](std::size_t i) {
        // Pure function of the index, as the tier-equivalence contract
        // requires.
        return Point{i, i * i + 7};
      })
      .consume([out](std::size_t i, Point&& p) {
        EXPECT_EQ(i, p.index);
        out->push_back(p);
      })
      .codec(
          [](const Point& p) {
            std::string bytes;
            BinaryWriter w(bytes);
            w.u64(p.index);
            w.u64(p.value);
            return bytes;
          },
          [](std::string_view bytes) {
            BinaryReader r(bytes);
            Point p;
            p.index = r.u64();
            p.value = r.u64();
            r.expect_done();
            return p;
          });
  return driver;
}

void expect_sequence(const std::vector<Point>& points, std::size_t count) {
  ASSERT_EQ(points.size(), count);
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(points[i].index, i);
    EXPECT_EQ(points[i].value, i * i + 7);
  }
}

TEST(SweepDriverTest, AllTiersConsumeTheSameOrderedSequence) {
  constexpr std::size_t kCount = 17;

  std::vector<Point> serial;
  auto d1 = point_driver(&serial);
  EXPECT_TRUE(d1.run(kCount, SweepExecution::serial()).ok());
  expect_sequence(serial, kCount);

  // Worker counts that do and do not divide the axis, to force reordering
  // through the contiguous-prefix buffer.
  for (int workers : {1, 3, 8}) {
    BatchRunner runner(workers);
    std::vector<Point> pooled;
    auto d2 = point_driver(&pooled);
    EXPECT_TRUE(d2.run(kCount, SweepExecution::pooled(runner)).ok());
    expect_sequence(pooled, kCount);
  }

  SupervisorConfig config;
  config.workers = 3;
  Supervisor supervisor(config);
  std::vector<Point> supervised;
  auto d3 = point_driver(&supervised);
  const SupervisorReport report =
      d3.run(kCount, SweepExecution::supervised(supervisor));
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.completed, kCount);
  expect_sequence(supervised, kCount);
}

TEST(SweepDriverTest, SupervisedTierRequiresACodec) {
  SweepDriver<Point> driver;
  driver.shard([](std::size_t i) { return Point{i, i}; });
  Supervisor supervisor;
  EXPECT_THROW(driver.run(2, SweepExecution::supervised(supervisor)),
               std::invalid_argument);
  // The in-process tiers never touch the codec.
  EXPECT_TRUE(driver.run(2, SweepExecution::serial()).ok());
}

TEST(SweepDriverTest, MissingShardFunctionThrows) {
  SweepDriver<Point> driver;
  EXPECT_THROW(driver.run(1, SweepExecution::serial()),
               std::invalid_argument);
}

TEST(SweepDriverTest, InProcessTiersPropagateShardExceptions) {
  SweepDriver<int> driver;
  driver.shard([](std::size_t i) -> int {
    if (i == 2) throw std::runtime_error("shard 2 exploded");
    return static_cast<int>(i);
  });
  EXPECT_THROW(driver.run(4, SweepExecution::serial()), std::runtime_error);
  BatchRunner runner(2);
  EXPECT_THROW(driver.run(4, SweepExecution::pooled(runner)),
               std::runtime_error);
}

TEST(SweepDriverTest, ZeroShardsIsANoOp) {
  int consumed = 0;
  SweepDriver<int> driver;
  driver.shard([](std::size_t i) { return static_cast<int>(i); })
      .consume([&](std::size_t, int&&) { ++consumed; });
  const SupervisorReport report = driver.run(0, SweepExecution::serial());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(consumed, 0);
}

}  // namespace
}  // namespace eab::core
