// Metro layer: the 1-cell zero-mobility metro reproduces run_cell byte for
// byte, metro runs are shard-count- and execution-tier-invariant, the
// mobility ledger conserves UEs and grants, the hotspot apportionment is
// deterministic, and traced mobility runs audit clean per UE.
#include "metro/metro.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "cell/cell.hpp"
#include "core/batch.hpp"
#include "core/scenario.hpp"
#include "core/supervisor.hpp"
#include "corpus/page_spec.hpp"
#include "obs/audit.hpp"

namespace eab::metro {
namespace {

std::vector<corpus::PageSpec> small_mix() {
  const auto all = corpus::mobile_benchmark();
  return {all.begin(), all.begin() + 2};
}

cell::CellConfig small_cell(browser::PipelineMode mode) {
  cell::CellConfig config;
  config.per_ue = core::ScenarioBuilder(mode).build();
  config.specs = small_mix();
  config.users = 6;
  config.channels = 2;
  config.horizon = 120.0;
  config.cell_seed = 7;
  return config;
}

MetroConfig small_metro(browser::PipelineMode mode, int w = 2, int h = 2) {
  return MetroBuilder()
      .cell(small_cell(mode))
      .grid(w, h)
      .mean_dwell(20.0)
      .build();
}

TEST(MetroTest, OneCellZeroMobilityIsByteIdenticalToRunCell) {
  const cell::CellConfig config =
      small_cell(browser::PipelineMode::kEnergyAware);
  const cell::CellResult reference = cell::run_cell(config);
  const MetroResult metro =
      run_metro(MetroBuilder().cell(config).grid(1, 1).build());

  ASSERT_EQ(metro.cells.size(), 1u);
  EXPECT_EQ(cell::serialize_cell_result(metro.cells[0]),
            cell::serialize_cell_result(reference));
  EXPECT_EQ(metro.total_users, config.users);
  EXPECT_EQ(metro.offered, reference.offered);
  EXPECT_EQ(metro.sim_events, reference.sim_events);
  EXPECT_EQ(metro.reselects, 0u);
  EXPECT_EQ(metro.handovers, 0u);
}

TEST(MetroTest, OneCellTelemetryAndOutagesStillMatchRunCell) {
  // The hard variants of the identity: the shared TickCoordinator must end
  // the tick chain exactly where run_cell's does, and whole-cell outage
  // scheduling must replay on the same shard at the same instants.
  cell::CellConfig config = small_cell(browser::PipelineMode::kOriginal);
  config.telemetry_tick = 7.0;
  config.cell_outage_count = 2;
  config.cell_outage_start = 20.0;
  config.cell_outage_period = 40.0;
  config.cell_outage_duration = 4.0;
  const cell::CellResult reference = cell::run_cell(config);
  const MetroResult metro =
      run_metro(MetroBuilder().cell(config).grid(1, 1).build());

  ASSERT_EQ(metro.cells.size(), 1u);
  EXPECT_EQ(cell::serialize_cell_result(metro.cells[0]),
            cell::serialize_cell_result(reference));
  EXPECT_GT(reference.cell_outages, 0u);
}

/// Bit-exact comparison surface minus the metro-global quantities: a metro
/// cell reports the whole run's fired count as sim_events and measures its
/// energy windows out to the METRO's workload end (an idle camping tail
/// past the cell's own last event), so only window-independent statistics
/// can match a standalone run exactly.
std::string workload_fingerprint(const cell::CellResult& r) {
  std::string out = std::to_string(r.offered) + "/" +
                    std::to_string(r.dropped) + "/" +
                    std::to_string(r.completed) + "/" +
                    std::to_string(r.aborted) + "/" +
                    std::to_string(r.grant_overcommits) + "/" +
                    std::to_string(r.peak_busy_grants);
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "/%.17g", r.mean_grant_hold);
  return out + buffer;
}

TEST(MetroTest, ZeroDwellMultiCellEqualsIndependentCells) {
  // With mobility off a metro is exactly M independent cells in one
  // simulator: cell c must reproduce run_cell on the cell-c config in
  // every window-independent statistic, and the metro's single workload
  // end must be exactly the max of the standalone ends.
  const cell::CellConfig base = small_cell(browser::PipelineMode::kOriginal);
  const MetroResult metro =
      run_metro(MetroBuilder().cell(base).grid(3, 1).build());
  ASSERT_EQ(metro.cells.size(), 3u);
  Seconds max_end = 0;
  for (int c = 0; c < 3; ++c) {
    cell::CellConfig config = base;
    config.cell_seed = base.cell_seed + static_cast<std::uint64_t>(c);
    const cell::CellResult standalone = cell::run_cell(config);
    EXPECT_EQ(workload_fingerprint(metro.cells[c]),
              workload_fingerprint(standalone))
        << "cell " << c;
    max_end = std::max(max_end, standalone.end_time);
  }
  EXPECT_EQ(metro.end_time, max_end);
  for (const cell::CellResult& cr : metro.cells) {
    EXPECT_EQ(cr.end_time, max_end);
  }
}

TEST(MetroTest, ShardCountIsInvisibleInTheResultBytes) {
  MetroConfig config = small_metro(browser::PipelineMode::kEnergyAware);
  config.cell.users = 8;
  config.cell.channels = 2;
  ASSERT_EQ(config.cell.sim_shards, 1);
  const std::string single = serialize_metro_result(run_metro(config));
  const MetroResult reference = deserialize_metro_result(single);
  EXPECT_GT(reference.offered, 0u);
  EXPECT_GT(reference.reselects + reference.handovers, 0u);
  for (int shards : {2, 4, 7}) {
    config.cell.sim_shards = shards;
    EXPECT_EQ(serialize_metro_result(run_metro(config)), single)
        << "sim_shards=" << shards;
  }
}

TEST(MetroTest, SweepTiersAreBitIdentical) {
  const MetroConfig base = small_metro(browser::PipelineMode::kOriginal);
  const std::vector<int> axis{2, 4};

  std::vector<std::string> serial;
  run_metro_sweep(base, axis, core::SweepExecution::serial(),
                  [&](std::size_t i, const MetroResult& r) {
                    EXPECT_EQ(i, serial.size());
                    serial.push_back(serialize_metro_result(r));
                  });
  ASSERT_EQ(serial.size(), axis.size());

  core::BatchRunner runner(2);
  std::vector<std::string> pooled;
  run_metro_sweep(base, axis, core::SweepExecution::pooled(runner),
                  [&](std::size_t i, const MetroResult& r) {
                    EXPECT_EQ(i, pooled.size());
                    pooled.push_back(serialize_metro_result(r));
                  });
  EXPECT_EQ(pooled, serial);

  core::SupervisorConfig sup_config;
  sup_config.workers = 2;
  core::Supervisor supervisor(sup_config);
  std::vector<std::string> supervised;
  const core::SupervisorReport report =
      run_metro_sweep(base, axis, core::SweepExecution::supervised(supervisor),
                      [&](std::size_t i, const MetroResult& r) {
                        EXPECT_EQ(i, supervised.size());
                        supervised.push_back(serialize_metro_result(r));
                      });
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(supervised, serial);
}

TEST(MetroTest, MobilityLedgerConserves) {
  // Heavy churn: small dwell against 120 s horizon, contended grants.
  MetroConfig config = small_metro(browser::PipelineMode::kEnergyAware, 3, 2);
  config.cell.users = 8;
  config.cell.channels = 2;
  config.mean_dwell = 10.0;
  const MetroResult result = run_metro(config);

  EXPECT_EQ(result.total_users,
            std::accumulate(result.home_users.begin(),
                            result.home_users.end(), 0));
  EXPECT_EQ(result.total_users, config.cell.users * 6);

  // Every move out is a move in somewhere; the aggregates are the per-cell
  // sums on both sides.
  std::uint64_t reselects_in = 0, reselects_out = 0;
  std::uint64_t handovers_in = 0, handovers_out = 0, drops = 0;
  for (const MetroCellStats& s : result.mobility) {
    reselects_in += s.reselects_in;
    reselects_out += s.reselects_out;
    handovers_in += s.handovers_in;
    handovers_out += s.handovers_out;
    drops += s.handover_drops;
  }
  EXPECT_EQ(reselects_in, result.reselects);
  EXPECT_EQ(reselects_out, result.reselects);
  EXPECT_EQ(handovers_in, result.handovers);
  EXPECT_EQ(handovers_out, result.handovers);
  EXPECT_EQ(drops, result.handover_drops);
  EXPECT_GT(result.reselects, 0u);
  EXPECT_GT(result.handovers, 0u);

  // Session accounting still closes under churn, and no cell leaks flows.
  std::uint64_t offered = 0;
  for (const cell::CellResult& cr : result.cells) {
    offered += cr.offered;
    EXPECT_EQ(cr.leaked_flows, 0u);
  }
  EXPECT_EQ(offered, result.offered);
  EXPECT_GT(result.completed, 0u);
}

TEST(MetroTest, MobilitySeedSweepStaysClean) {
  // Churn across many mobility schedules: whatever the seed puts a move
  // event against (mid-fetch, mid-signalling, mid-release), every run must
  // terminate, keep the mobility ledger balanced and leak nothing.
  // EAB_METRO_SWEEP_SEEDS trims the sweep for expensive builds — check.sh
  // replays 16 seeds under ASan to guard the handover-teardown lifetimes.
  std::uint64_t seeds = 16;
  if (const char* raw = std::getenv("EAB_METRO_SWEEP_SEEDS")) {
    const long parsed = std::strtol(raw, nullptr, 10);
    if (parsed >= 1 && parsed <= 64) seeds = static_cast<std::uint64_t>(parsed);
  }
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    MetroConfig config = small_metro(seed % 2 == 0
                                         ? browser::PipelineMode::kEnergyAware
                                         : browser::PipelineMode::kOriginal);
    config.cell.users = 4;
    config.cell.horizon = 60.0;
    config.cell.cell_seed = seed;
    config.mean_dwell = 8.0;
    config.hotspot = 1.0;
    config.policy =
        seed % 3 == 0 ? HandoverPolicy::kInstant : HandoverPolicy::kHard;
    const MetroResult result = run_metro(config);

    std::uint64_t moves_in = 0, moves_out = 0, offered = 0;
    for (std::size_t c = 0; c < result.cells.size(); ++c) {
      const MetroCellStats& s = result.mobility[c];
      moves_in += s.reselects_in + s.handovers_in;
      moves_out += s.reselects_out + s.handovers_out;
      offered += result.cells[c].offered;
      EXPECT_EQ(result.cells[c].leaked_flows, 0u) << "seed " << seed;
    }
    EXPECT_EQ(moves_in, moves_out) << "seed " << seed;
    EXPECT_EQ(moves_in, result.reselects + result.handovers)
        << "seed " << seed;
    EXPECT_EQ(offered, result.offered) << "seed " << seed;
    EXPECT_EQ(result.offered,
              result.dropped + result.completed + result.aborted)
        << "seed " << seed;
  }
}

TEST(MetroTest, HotspotApportionmentIsSkewedAndDeterministic) {
  MetroConfig config = small_metro(browser::PipelineMode::kOriginal, 4, 2);
  config.mean_dwell = 0;
  config.hotspot = 8.0;
  config.cell.horizon = 30.0;
  const MetroResult a = run_metro(config);
  const MetroResult b = run_metro(config);
  EXPECT_EQ(a.home_users, b.home_users);
  EXPECT_EQ(std::accumulate(a.home_users.begin(), a.home_users.end(), 0),
            config.cell.users * 8);
  const auto [lo, hi] =
      std::minmax_element(a.home_users.begin(), a.home_users.end());
  EXPECT_LT(*lo, *hi) << "hotspot=8 should skew the home distribution";
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    EXPECT_EQ(a.cells[c].users, a.home_users[c]);
  }
}

TEST(MetroTest, SerializeRoundTripsAndRejectsGarbage) {
  const MetroResult result =
      run_metro(small_metro(browser::PipelineMode::kEnergyAware));
  const std::string bytes = serialize_metro_result(result);
  EXPECT_EQ(serialize_metro_result(deserialize_metro_result(bytes)), bytes);
  EXPECT_THROW(deserialize_metro_result("torn"), std::runtime_error);
}

TEST(MetroTest, BuilderValidatesAtBuild) {
  const cell::CellConfig cell = small_cell(browser::PipelineMode::kOriginal);
  EXPECT_THROW(MetroBuilder().cell(cell).grid(0, 3).build(),
               std::invalid_argument);
  EXPECT_THROW(MetroBuilder().cell(cell).grid(17, 16).build(),
               std::invalid_argument);  // 272 shards > engine limit
  EXPECT_THROW(MetroBuilder().cell(cell).mean_dwell(-1.0).build(),
               std::invalid_argument);
  EXPECT_THROW(MetroBuilder().cell(cell).hotspot(-0.5).build(),
               std::invalid_argument);
  cell::CellConfig bad = cell;
  bad.users = 0;  // the template goes through the one cell validation path
  EXPECT_THROW(MetroBuilder().cell(bad).build(), std::invalid_argument);

  core::Supervisor supervisor;
  cell::CellConfig traced = cell;
  traced.per_ue.stack.trace = true;
  EXPECT_THROW(
      run_metro_sweep(MetroBuilder().cell(traced).build(), {2},
                      core::SweepExecution::supervised(supervisor), {}),
      std::invalid_argument);
}

TEST(MetroTest, TracedMobilityRunAuditsCleanPerUe) {
  MetroConfig config = small_metro(browser::PipelineMode::kEnergyAware, 2, 1);
  config.cell.users = 4;
  config.cell.channels = 2;
  config.mean_dwell = 12.0;
  config.cell.horizon = 90.0;
  config.cell.per_ue.stack.trace = true;
  const MetroResult result = run_metro(config);
  EXPECT_GT(result.reselects + result.handovers, 0u);

  obs::TraceAuditor auditor;
  int audited = 0;
  for (const cell::CellResult& cr : result.cells) {
    for (const cell::UeStats& ue : cr.per_ue) {
      ASSERT_NE(ue.trace, nullptr);
      obs::AuditInputs inputs;
      inputs.rrc = config.cell.per_ue.stack.rrc;
      inputs.power = config.cell.per_ue.stack.power;
      inputs.max_retries = config.cell.per_ue.stack.retry.max_retries;
      inputs.radio_energy = ue.energy.radio_j;
      inputs.t_end = result.end_time;
      const auto report = auditor.audit(*ue.trace, inputs);
      EXPECT_TRUE(report.ok()) << "ue " << audited << ":\n"
                               << report.summary();
      ++audited;
    }
  }
  EXPECT_EQ(audited, result.total_users);
}

TEST(MetroTest, InstantPolicyMigratesWithoutSignalling) {
  MetroConfig config = small_metro(browser::PipelineMode::kEnergyAware, 2, 1);
  config.cell.users = 8;
  config.cell.channels = 3;
  config.mean_dwell = 8.0;
  config.policy = HandoverPolicy::kInstant;
  const MetroResult result = run_metro(config);
  EXPECT_GT(result.handovers, 0u);
  // No handover exchange means no handover energy and no paused flows:
  // the run still closes its books.
  for (const cell::CellResult& cr : result.cells) {
    EXPECT_EQ(cr.leaked_flows, 0u);
  }
  EXPECT_STREQ(to_string(HandoverPolicy::kInstant), "instant");
  EXPECT_STREQ(to_string(HandoverPolicy::kHard), "hard");
}

TEST(MetroTest, UsersAtDropTargetInterpolates) {
  const std::vector<int> axis{10, 20, 30};
  EXPECT_DOUBLE_EQ(users_at_drop_target(axis, {0.0, 0.05, 0.2}, 0.05), 20.0);
  EXPECT_NEAR(users_at_drop_target(axis, {0.0, 0.02, 0.10}, 0.05), 23.75,
              1e-9);
  EXPECT_DOUBLE_EQ(users_at_drop_target(axis, {0.1, 0.2, 0.3}, 0.05), 10.0);
  EXPECT_DOUBLE_EQ(users_at_drop_target(axis, {0.0, 0.0, 0.0}, 0.05), 30.0);
  EXPECT_THROW(users_at_drop_target({}, {}, 0.05), std::invalid_argument);
}

}  // namespace
}  // namespace eab::metro
