// Fuzz-style robustness sweeps for the content engines.
//
// The parsers consume whatever a server sends.  These property tests feed
// structured-random and mutated inputs into the HTML/CSS/JS front ends and
// assert the engine-level invariants: never crash, never loop, and always
// produce a usable (possibly empty) result.
#include <gtest/gtest.h>

#include "browser/text_render.hpp"
#include "net/fault.hpp"
#include "net/http_client.hpp"
#include "util/rng.hpp"
#include "web/css.hpp"
#include "web/html_parser.hpp"
#include "web/js.hpp"

namespace eab::web {
namespace {

/// Random soup with markup-significant characters over-represented.
std::string random_soup(Rng& rng, std::size_t length) {
  static constexpr std::string_view kAlphabet =
      "<>=\"'/&;:{}()[]#.@!- \n\tabcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[rng.uniform_index(kAlphabet.size())]);
  }
  return out;
}

/// Takes valid markup and damages it: truncation, splicing, duplication.
std::string mutate(Rng& rng, std::string input) {
  switch (rng.uniform_index(4)) {
    case 0:  // truncate
      return input.substr(0, rng.uniform_index(input.size() + 1));
    case 1: {  // splice soup into the middle
      const std::size_t at = rng.uniform_index(input.size() + 1);
      return input.substr(0, at) + random_soup(rng, 20) + input.substr(at);
    }
    case 2: {  // delete a chunk
      if (input.size() < 10) return input;
      const std::size_t at = rng.uniform_index(input.size() - 8);
      return input.substr(0, at) + input.substr(at + 8);
    }
    default:  // duplicate a chunk
      return input + input.substr(input.size() / 2);
  }
}

const char* const kValidHtml =
    "<!doctype html><html><head><title>t</title>"
    "<link rel='stylesheet' href='a.css'></head>"
    "<body><div class='x'><p>hello &amp; goodbye</p>"
    "<img src='i.jpg' width='10'><script>var a = 1 + 2;</script>"
    "<a href='n.html'>go</a></div></body></html>";

class HtmlFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HtmlFuzz, SoupNeverCrashesAndRendersSafely) {
  Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const std::string soup = random_soup(rng, 50 + rng.uniform_index(400));
    ParsedHtml parsed;
    ASSERT_NO_THROW(parsed = parse_html(soup));
    ASSERT_GE(parsed.dom.node_count(), 1u);
    // Downstream consumers must be able to walk whatever came out.
    browser::Viewport viewport;
    ASSERT_NO_THROW(browser::estimate_geometry(parsed.dom.root(), viewport));
    ASSERT_NO_THROW(browser::render_text(parsed.dom.root(), viewport,
                                         browser::RenderStyle::kFull, 50));
  }
}

TEST_P(HtmlFuzz, MutatedMarkupKeepsInvariants) {
  Rng rng(GetParam() ^ 0xABCD);
  for (int round = 0; round < 40; ++round) {
    const std::string damaged = mutate(rng, kValidHtml);
    ParsedHtml parsed;
    ASSERT_NO_THROW(parsed = parse_html(damaged));
    for (const auto& ref : parsed.references) {
      EXPECT_FALSE(ref.url.empty());
    }
    // The signature function must work on any tree shape.
    ASSERT_NO_THROW(parsed.dom.signature());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HtmlFuzz, ::testing::Values(1, 2, 3, 4, 5));

class CssFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CssFuzz, SoupAndMutationsNeverCrash) {
  Rng rng(GetParam());
  const std::string valid_css =
      ".a, div#b .c { color: red; background: url(x.png); }"
      "@import url(y.css); @media screen { p { margin: 0; } }";
  for (int round = 0; round < 60; ++round) {
    const std::string input = round % 2 == 0
                                  ? random_soup(rng, 30 + rng.uniform_index(300))
                                  : mutate(rng, valid_css);
    ASSERT_NO_THROW(scan_css_urls(input));
    StyleSheet sheet;
    ASSERT_NO_THROW(sheet = parse_css(input));
    // Matching must be safe against any parsed rule set.
    const auto doc = parse_html("<div class='a'><p id='b'>x</p></div>");
    ASSERT_NO_THROW(matching_declarations(sheet, *doc.dom.find_first("p")));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CssFuzz, ::testing::Values(10, 20, 30));

class JsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

/// Host that tolerates anything the fuzzer-driven scripts do.
class NullHost : public js::JsHost {
 public:
  void document_write(const std::string&) override {}
  void request_resource(const std::string&, net::ResourceKind) override {}
  double random() override { return 0.5; }
};

TEST_P(JsFuzz, GarbageIsReportedNeverThrown) {
  Rng rng(GetParam());
  NullHost host;
  js::Interpreter interp(host, 100'000);  // tight budget: loops get cut
  const std::string valid_js =
      "var a = 1; for (var i = 0; i < 9; i++) { a = a + i % 3; }"
      "function f(x) { return x * 2; } var b = f(a);";
  for (int round = 0; round < 60; ++round) {
    const std::string input = round % 2 == 0
                                  ? random_soup(rng, 20 + rng.uniform_index(200))
                                  : mutate(rng, valid_js);
    js::RunResult result;
    ASSERT_NO_THROW(result = interp.run(input));
    // Either it completed, or it carries a diagnostic.
    EXPECT_TRUE(result.completed || !result.error.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsFuzz, ::testing::Values(100, 200, 300));

// --- network-layer truncation -------------------------------------------------
//
// The fuzz suites above damage inputs by hand; these tests damage them the
// way the network actually does — a FaultInjector cuts the body at a random
// wire offset inside a real fetch — and assert the same engine invariants on
// whatever partial payload the HTTP client delivers.

class NetworkTruncationFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// Fetches `url` (hosted with `body`) under a truncate-everything plan and
  /// returns the partial body the client delivered.
  std::string truncated_fetch(const std::string& url, net::ResourceKind kind,
                              const std::string& body, std::uint64_t seed) {
    sim::Simulator sim;
    radio::RrcConfig rrc_config;
    radio::RadioPowerModel power;
    radio::LinkConfig link_config;
    net::WebServer server;
    net::Resource resource;
    resource.url = url;
    resource.kind = kind;
    resource.size = body.size();
    resource.body = body;
    server.host(resource);

    radio::RrcMachine rrc(sim, rrc_config, power);
    net::SharedLink link(sim, link_config.dch_bandwidth);
    net::FaultPlan plan;
    plan.seed = seed;
    plan.truncate_rate = 1.0;
    net::FaultInjector injector(sim, link, plan);
    net::HttpClient client(sim, server, link, rrc, link_config);
    client.set_fault_injector(&injector);

    net::FetchResult result;
    client.fetch(url, [&](const net::FetchResult& r) { result = r; });
    sim.run();
    EXPECT_EQ(result.status, net::FetchStatus::kTruncated);
    if (result.resource == nullptr) return {};
    EXPECT_LT(result.resource->body.size(), body.size());
    return result.resource->body;
  }
};

TEST_P(NetworkTruncationFuzz, HtmlSurvivesFetchParseLayout) {
  const std::string full = std::string(kValidHtml);
  for (int round = 0; round < 10; ++round) {
    const std::string partial = truncated_fetch(
        "http://t/" + std::to_string(round) + ".html", net::ResourceKind::kHtml,
        full, GetParam() + round);
    ParsedHtml parsed;
    ASSERT_NO_THROW(parsed = parse_html(partial));
    ASSERT_GE(parsed.dom.node_count(), 1u);
    browser::Viewport viewport;
    ASSERT_NO_THROW(browser::estimate_geometry(parsed.dom.root(), viewport));
    ASSERT_NO_THROW(browser::render_text(parsed.dom.root(), viewport,
                                         browser::RenderStyle::kFull, 50));
  }
}

TEST_P(NetworkTruncationFuzz, CssSurvivesFetchParseMatch) {
  const std::string full =
      ".a, div#b .c { color: red; background: url(x.png); }"
      "@import url(y.css); @media screen { p { margin: 0; } }";
  for (int round = 0; round < 10; ++round) {
    const std::string partial = truncated_fetch(
        "http://t/" + std::to_string(round) + ".css", net::ResourceKind::kCss,
        full, GetParam() + round);
    ASSERT_NO_THROW(scan_css_urls(partial));
    StyleSheet sheet;
    ASSERT_NO_THROW(sheet = parse_css(partial));
    const auto doc = parse_html("<div class='a'><p id='b'>x</p></div>");
    ASSERT_NO_THROW(matching_declarations(sheet, *doc.dom.find_first("p")));
  }
}

TEST_P(NetworkTruncationFuzz, JsSurvivesFetchAndExecution) {
  const std::string full =
      "var a = 1; for (var i = 0; i < 9; i++) { a = a + i % 3; }"
      "function f(x) { return x * 2; } var b = f(a);";
  NullHost host;
  js::Interpreter interp(host, 100'000);
  for (int round = 0; round < 10; ++round) {
    const std::string partial = truncated_fetch(
        "http://t/" + std::to_string(round) + ".js", net::ResourceKind::kJs,
        full, GetParam() + round);
    js::RunResult result;
    ASSERT_NO_THROW(result = interp.run(partial));
    EXPECT_TRUE(result.completed || !result.error.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkTruncationFuzz,
                         ::testing::Values(1000, 2000, 3000));

TEST(HtmlEntities, DecodedInTextAndAttributes) {
  const auto parsed = parse_html(
      "<p title='a &amp; b'>1 &lt; 2 &gt; 0 &quot;q&quot; &#65;&#x42;"
      " &unknown; &nbsp;</p>");
  EXPECT_EQ(parsed.dom.root().text_content(),
            "1 < 2 > 0 \"q\" AB &unknown;  ");
  EXPECT_EQ(parsed.dom.find_first("p")->attr("title"), "a & b");
}

TEST(HtmlEntities, MalformedReferencesStayLiteral) {
  const auto parsed = parse_html("<p>fish &chips; 5&6 &#; &#xZZ; tail&</p>");
  EXPECT_EQ(parsed.dom.root().text_content(),
            "fish &chips; 5&6 &#; &#xZZ; tail&");
}

TEST(HtmlEntities, NumericOutOfAsciiKeptRaw) {
  const auto parsed = parse_html("<p>&#8364;</p>");  // euro sign
  EXPECT_EQ(parsed.dom.root().text_content(), "&#8364;");
}

}  // namespace
}  // namespace eab::web
