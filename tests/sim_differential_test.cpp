// Differential property test for the pooled SoA event engine: replays
// seed-derived random operation sequences against a deliberately naive
// reference simulator (a sorted std::vector scanned linearly) and asserts
// the engines agree on everything observable — fire order, timestamps,
// cancel results, counters, and the final clock.  The reference is slow and
// obviously correct; the engine is fast and this test keeps it honest.
//
// The op mix deliberately covers the engine's hairy paths: forced equal
// timestamps (order-stamp tie-break), cancels of live / fired / already-
// cancelled ids (tombstones + stale-handle rejection), events that spawn
// children from inside their own callback (in-place invoke + slot reuse),
// oversized captures (OverflowPool), run_until sweeps, bounded run(max),
// and the sharded multi-queue (whose merge must be bit-identical to the
// single queue no matter where events land).
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <bit>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace eab::sim {
namespace {

/// Naive reference: every pending event in one flat vector; step() scans for
/// the minimum (at, seq).  O(n) per op, zero cleverness.
class ReferenceSim {
 public:
  std::uint64_t schedule_at(Seconds at, std::function<void()> action) {
    if (at < now_) throw std::invalid_argument("ReferenceSim: past");
    const std::uint64_t id = next_seq_++;
    pending_.push_back({at, id, std::move(action)});
    return id;
  }
  std::uint64_t schedule_in(Seconds delay, std::function<void()> action) {
    if (delay < 0) throw std::invalid_argument("ReferenceSim: negative");
    return schedule_at(now_ + delay, std::move(action));
  }
  bool cancel(std::uint64_t id) {
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].seq == id) {
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        ++cancelled_;
        return true;
      }
    }
    return false;
  }
  bool step() {
    const std::size_t min = find_min();
    if (min == pending_.size()) return false;
    Entry entry = std::move(pending_[min]);
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(min));
    now_ = entry.at;
    ++fired_;
    entry.action();
    return true;
  }
  std::size_t run() {
    std::size_t n = 0;
    while (step()) ++n;
    return n;
  }
  std::size_t run(std::size_t max_events) {
    std::size_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }
  std::size_t run_until(Seconds until) {
    std::size_t n = 0;
    for (std::size_t min = find_min();
         min != pending_.size() && pending_[min].at <= until;
         min = find_min()) {
      step();
      ++n;
    }
    if (until > now_) now_ = until;
    return n;
  }
  Seconds now() const { return now_; }
  std::size_t pending_count() const { return pending_.size(); }
  std::uint64_t fired_count() const { return fired_; }
  std::uint64_t cancelled_count() const { return cancelled_; }

 private:
  struct Entry {
    Seconds at;
    std::uint64_t seq;
    std::function<void()> action;
  };
  std::size_t find_min() const {
    std::size_t best = pending_.size();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (best == pending_.size() || pending_[i].at < pending_[best].at ||
          (pending_[i].at == pending_[best].at &&
           pending_[i].seq < pending_[best].seq)) {
        best = i;
      }
    }
    return best;
  }
  std::vector<Entry> pending_;
  Seconds now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::uint64_t cancelled_ = 0;
};

/// Everything one replay observed; two replays agree iff these are equal.
struct Observations {
  std::vector<std::pair<std::uint64_t, Seconds>> fires;  // (tag, timestamp)
  std::vector<bool> cancel_results;
  std::vector<std::size_t> run_counts;  // events fired per run_until/run(max)
  Seconds final_now = 0;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  std::size_t pending_after_drain = 0;

  bool operator==(const Observations&) const = default;
};

/// Child-spawn rule shared by both engines: purely a function of the firing
/// event's tag, so the replays stay aligned without consulting the rng.
Seconds child_delay(std::uint64_t tag) {
  return static_cast<Seconds>((tag * 2654435761ull) % 100) / 10.0;
}

constexpr std::uint64_t kChildTagLimit = 1u << 20;  // bounds spawn recursion

// Engine-specific shims so one replay template drives both simulators.
std::uint64_t to_handle(EventId id) {
  static_assert(sizeof(EventId) == sizeof(std::uint64_t));
  return std::bit_cast<std::uint64_t>(id);
}
std::uint64_t to_handle(std::uint64_t id) { return id; }

template <class SimT>
auto from_handle(std::uint64_t raw) {
  if constexpr (std::is_same_v<SimT, Simulator>) {
    return std::bit_cast<EventId>(raw);
  } else {
    return raw;
  }
}

std::size_t run_some(Simulator& sim, std::size_t max) {
  return sim.run(max).events;
}
std::size_t run_some(ReferenceSim& sim, std::size_t max) {
  return sim.run(max);
}

/// Replays `ops` random operations against `sim` (either engine).  Every
/// fifth tag spawns a child from inside its own callback; every seventh tag
/// drags a ~200-byte payload through the callable (exercising OverflowPool
/// on the real engine).  `shards`, when the engine supports sharding,
/// scatters schedules across queues — the merge must hide it completely.
template <class SimT>
Observations replay(SimT& sim, std::uint64_t seed, int ops, int shards) {
  Observations obs;
  std::vector<std::uint64_t> handles;  // dense tags; index = tag - 1
  std::uint64_t next_tag = 1;

  std::function<void(std::uint64_t)> fire = [&](std::uint64_t tag) {
    obs.fires.emplace_back(tag, sim.now());
    if (tag % 5 == 0 && tag < kChildTagLimit) {
      const std::uint64_t child = tag * 31 + 7;
      sim.schedule_in(child_delay(tag), [&fire, child] { fire(child); });
    }
  };

  auto schedule = [&](Seconds at) {
    const std::uint64_t tag = next_tag++;
    if constexpr (requires { sim.set_schedule_shard(0); }) {
      if (shards > 1) sim.set_schedule_shard(static_cast<int>(tag % shards));
    }
    std::uint64_t handle;
    if (tag % 7 == 0) {
      // Oversized capture: far past the inline buffer, forcing the pool.
      // The payload round-trips through the fired tag so a clobbered
      // overflow block would show up as a fire-log mismatch.
      std::array<std::uint64_t, 32> payload{};
      payload.fill(tag);
      handle = to_handle(sim.schedule_at(
          at, [&fire, payload] { fire(payload[31]); }));
    } else {
      handle = to_handle(sim.schedule_at(at, [&fire, tag] { fire(tag); }));
    }
    handles.push_back(handle);
  };

  Rng rng(derive_seed(seed, 0xd1ffu));
  for (int i = 0; i < ops; ++i) {
    const double roll = rng.uniform();
    if (roll < 0.45) {
      schedule(sim.now() + rng.uniform(0.0, 100.0));
    } else if (roll < 0.60) {
      // Quantized times: deliberate collisions to stress the tie-break.
      schedule(sim.now() + static_cast<Seconds>(rng.uniform_index(20)));
    } else if (roll < 0.75 && !handles.empty()) {
      const std::uint64_t victim = rng.uniform_index(handles.size());
      obs.cancel_results.push_back(
          sim.cancel(from_handle<SimT>(handles[victim])));
    } else if (roll < 0.85) {
      sim.step();
    } else if (roll < 0.95) {
      obs.run_counts.push_back(
          sim.run_until(sim.now() + rng.uniform(0.0, 50.0)));
    } else {
      obs.run_counts.push_back(run_some(sim, rng.uniform_index(16)));
    }
  }
  sim.run();

  obs.final_now = sim.now();
  obs.fired = sim.fired_count();
  obs.cancelled = sim.cancelled_count();
  obs.pending_after_drain = sim.pending_count();
  return obs;
}

class SimDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimDifferential, EngineMatchesNaiveReference) {
  const std::uint64_t seed = GetParam();
  ReferenceSim reference;
  const Observations expected = replay(reference, seed, 400, 1);

  Simulator engine;
  const Observations actual = replay(engine, seed, 400, 1);

  ASSERT_EQ(actual.fires.size(), expected.fires.size());
  for (std::size_t i = 0; i < expected.fires.size(); ++i) {
    EXPECT_EQ(actual.fires[i].first, expected.fires[i].first) << "fire " << i;
    EXPECT_DOUBLE_EQ(actual.fires[i].second, expected.fires[i].second)
        << "fire " << i;
  }
  EXPECT_EQ(actual.cancel_results, expected.cancel_results);
  EXPECT_EQ(actual.run_counts, expected.run_counts);
  EXPECT_DOUBLE_EQ(actual.final_now, expected.final_now);
  EXPECT_EQ(actual.fired, expected.fired);
  EXPECT_EQ(actual.cancelled, expected.cancelled);
  EXPECT_EQ(actual.pending_after_drain, 0u);
  EXPECT_EQ(expected.pending_after_drain, 0u);
}

TEST_P(SimDifferential, ShardedEngineMatchesNaiveReference) {
  const std::uint64_t seed = GetParam();
  ReferenceSim reference;
  const Observations expected = replay(reference, seed, 400, 1);

  // Same sequence, but scattered across 3 queues by tag.  Shard placement
  // is invisible: the merge fires strictly by (time, order stamp).
  Simulator engine(3);
  const Observations actual = replay(engine, seed, 400, 3);

  EXPECT_EQ(actual.fires, expected.fires);
  EXPECT_EQ(actual.cancel_results, expected.cancel_results);
  EXPECT_EQ(actual.run_counts, expected.run_counts);
  EXPECT_DOUBLE_EQ(actual.final_now, expected.final_now);
  EXPECT_EQ(actual.fired, expected.fired);
  EXPECT_EQ(actual.cancelled, expected.cancelled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimDifferential,
                         ::testing::Values(1u, 2u, 3u, 17u, 42u, 1234u,
                                           0xdeadbeefu, 987654321u));

TEST(SimDifferential, BudgetThrowParity) {
  // Both engines fire exactly `budget` events before the engine's budget
  // trips; the reference (no budget machinery) confirms which events those
  // were.
  auto build = [](auto& sim, std::vector<int>& fired) {
    for (int i = 0; i < 20; ++i) {
      sim.schedule_at(static_cast<Seconds>(i), [&fired, i] {
        fired.push_back(i);
      });
    }
  };
  ReferenceSim reference;
  std::vector<int> ref_fired;
  build(reference, ref_fired);
  reference.run(7);

  Simulator engine;
  std::vector<int> engine_fired;
  build(engine, engine_fired);
  engine.set_event_budget(7);
  EXPECT_THROW(engine.run(), BudgetExhaustedError);
  EXPECT_EQ(engine_fired, ref_fired);
  EXPECT_EQ(engine.fired_count(), 7u);
}

}  // namespace
}  // namespace eab::sim
