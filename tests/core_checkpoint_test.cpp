// Durable checkpoint journal: round trips, torn-tail truncation at every
// byte boundary of the last record, single-byte corruption anywhere in the
// last record, and append-after-recovery.  These are the properties the
// supervisor's bit-identical crash recovery stands on.
#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/fileio.hpp"

namespace eab::core {
namespace {

using Record = std::pair<std::uint32_t, std::string>;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "ckpt_" + name + "_" +
         std::to_string(::getpid());
}

std::vector<Record> scan_all(const std::string& path,
                             CheckpointRecoverStats* stats = nullptr) {
  std::vector<Record> records;
  const auto found = CheckpointJournal::scan(
      path, [&](std::uint32_t type, std::string_view payload) {
        records.emplace_back(type, std::string(payload));
      });
  if (stats != nullptr) *stats = found;
  return records;
}

/// Records with empty, text and embedded-NUL payloads: framing must not
/// care what the bytes are.
std::vector<Record> sample_records() {
  return {{1, ""},
          {2, "launch"},
          {3, std::string("bin\0\xff\x00tail", 10)}};
}

void write_journal(const std::string& path,
                   const std::vector<Record>& records) {
  CheckpointJournal journal(path);
  for (const auto& [type, payload] : records) journal.append(type, payload);
}

TEST(CheckpointTest, RoundTripsRecordsAcrossReopen) {
  const std::string path = temp_path("roundtrip");
  const auto records = sample_records();
  write_journal(path, records);

  std::vector<Record> replayed;
  CheckpointJournal reopened(
      path, [&](std::uint32_t type, std::string_view payload) {
        replayed.emplace_back(type, std::string(payload));
      });
  EXPECT_EQ(replayed, records);
  EXPECT_EQ(reopened.recovered().records, records.size());
  EXPECT_EQ(reopened.recovered().dropped_bytes, 0u);
  EXPECT_FALSE(reopened.recovered().torn);
}

TEST(CheckpointTest, MissingFileScansEmpty) {
  CheckpointRecoverStats stats;
  EXPECT_TRUE(scan_all(temp_path("missing_nonexistent"), &stats).empty());
  EXPECT_EQ(stats.records, 0u);
  EXPECT_FALSE(stats.torn);
}

TEST(CheckpointTest, FileSizeMatchesFramedSize) {
  const std::string path = temp_path("framed");
  const auto records = sample_records();
  write_journal(path, records);
  std::string bytes;
  ASSERT_TRUE(read_file(path, bytes));
  std::size_t expected = 0;
  for (const auto& [type, payload] : records) {
    expected += CheckpointJournal::framed_size(payload.size());
  }
  EXPECT_EQ(bytes.size(), expected);
}

TEST(CheckpointTest, TruncationAtEveryByteOfLastRecordDropsExactlyIt) {
  // A mid-write SIGKILL can leave the file cut at ANY byte of the record
  // being appended.  Wherever the cut lands, recovery must keep every
  // earlier record and drop exactly the torn one.
  const std::string path = temp_path("torn");
  const auto records = sample_records();
  write_journal(path, records);
  std::string full;
  ASSERT_TRUE(read_file(path, full));
  const std::size_t last_frame =
      CheckpointJournal::framed_size(records.back().second.size());
  const std::size_t boundary = full.size() - last_frame;

  // ftruncate only ever shrinks here, so one file serves all cut points.
  for (std::size_t cut = full.size() - 1; cut > boundary; --cut) {
    ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(cut)), 0);
    CheckpointRecoverStats stats;
    const auto kept = scan_all(path, &stats);
    ASSERT_EQ(kept.size(), records.size() - 1) << "cut at byte " << cut;
    EXPECT_EQ(kept.back(), records[records.size() - 2]);
    EXPECT_TRUE(stats.torn);
    EXPECT_EQ(stats.dropped_bytes, cut - boundary);
  }

  // A cut exactly on the frame boundary is not torn: the last record simply
  // never started.
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(boundary)), 0);
  CheckpointRecoverStats stats;
  EXPECT_EQ(scan_all(path, &stats).size(), records.size() - 1);
  EXPECT_FALSE(stats.torn);
}

TEST(CheckpointTest, CorruptingAnyByteOfLastRecordDropsExactlyIt) {
  // Magic, type, length, CRC or payload — flipping any single byte of the
  // final frame must be detected, and only that record lost.
  const std::string path = temp_path("corrupt");
  const auto records = sample_records();
  write_journal(path, records);
  std::string full;
  ASSERT_TRUE(read_file(path, full));
  const std::size_t last_frame =
      CheckpointJournal::framed_size(records.back().second.size());
  const std::size_t boundary = full.size() - last_frame;

  for (std::size_t at = boundary; at < full.size(); ++at) {
    std::string mutated = full;
    mutated[at] = static_cast<char>(mutated[at] ^ 0xFF);
    ASSERT_TRUE(write_file_atomic(path, mutated));
    CheckpointRecoverStats stats;
    const auto kept = scan_all(path, &stats);
    ASSERT_EQ(kept.size(), records.size() - 1) << "corrupt byte " << at;
    EXPECT_EQ(kept.back(), records[records.size() - 2]);
    EXPECT_TRUE(stats.torn);
  }
}

TEST(CheckpointTest, RecoveryTruncatesTornTailAndAppendsCleanly) {
  // Opening for append must physically remove the torn tail, so the next
  // record lands on an intact boundary and a later crash cannot be confused
  // by leftover garbage.
  const std::string path = temp_path("reappend");
  const auto records = sample_records();
  write_journal(path, records);
  std::string full;
  ASSERT_TRUE(read_file(path, full));
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(full.size() - 3)), 0);

  {
    CheckpointJournal recovered(path);
    EXPECT_EQ(recovered.recovered().records, records.size() - 1);
    EXPECT_TRUE(recovered.recovered().torn);
    recovered.append(9, "appended-after-tear");
  }
  std::string healed;
  ASSERT_TRUE(read_file(path, healed));
  const std::size_t last_frame =
      CheckpointJournal::framed_size(records.back().second.size());
  EXPECT_EQ(healed.size(), full.size() - last_frame +
                               CheckpointJournal::framed_size(19));

  CheckpointRecoverStats stats;
  const auto kept = scan_all(path, &stats);
  ASSERT_EQ(kept.size(), records.size());
  EXPECT_EQ(kept.back(), (Record{9, "appended-after-tear"}));
  EXPECT_FALSE(stats.torn);
}

TEST(CheckpointTest, EmptyJournalSurvivesReopen) {
  const std::string path = temp_path("empty");
  { CheckpointJournal journal(path); }
  CheckpointJournal reopened(path);
  EXPECT_EQ(reopened.recovered().records, 0u);
  EXPECT_FALSE(reopened.recovered().torn);
}

}  // namespace
}  // namespace eab::core
