// Simulated-time telemetry (DESIGN.md §11): fixed-budget TimeSeries
// downsampling invariants, exact merge associativity (halves == whole),
// the crc32-tailed codec (round-trip, truncation, corruption), and the
// cell-level determinism contract — telemetry off leaves the run untouched,
// telemetry on never bends the workload, and serial == sharded ==
// supervised series bit for bit.
#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "cell/cell.hpp"
#include "core/scenario.hpp"
#include "core/supervisor.hpp"
#include "util/rng.hpp"

namespace eab::obs {
namespace {

// --- TimeSeries invariants -------------------------------------------------

TEST(TimeSeriesTest, RecordsIntoBaseWidthBuckets) {
  TimeSeries s(2.0, 8);
  s.record(0.5, 10.0);
  s.record(1.5, 20.0);   // same window [0, 2)
  s.record(2.0, 5.0);    // next window [2, 4)
  ASSERT_EQ(s.points().size(), 2u);
  EXPECT_EQ(s.level(), 0u);
  EXPECT_EQ(s.width(), 2.0);
  EXPECT_EQ(s.samples(), 3u);

  const SeriesPoint& w0 = s.points()[0];
  EXPECT_EQ(w0.bucket, 0u);
  EXPECT_EQ(w0.min, 10.0);
  EXPECT_EQ(w0.max, 20.0);
  EXPECT_EQ(w0.sum(), 30.0);
  EXPECT_EQ(w0.count, 2u);
  EXPECT_EQ(w0.last, 20.0);
  EXPECT_EQ(w0.mean(), 15.0);

  const SeriesPoint& w1 = s.points()[1];
  EXPECT_EQ(w1.bucket, 1u);
  EXPECT_EQ(w1.count, 1u);
  EXPECT_EQ(w1.last, 5.0);
}

TEST(TimeSeriesTest, BudgetTriggersPowerOfTwoCoarseningAndLosesNothing) {
  constexpr std::size_t kBudget = 16;
  TimeSeries s(1.0, kBudget);
  double sum = 0, lo = 1e9, hi = -1e9;
  constexpr int kSamples = 1000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = std::sin(0.1 * i) * 100.0 + i;
    sum += v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    s.record(static_cast<Seconds>(i), v);
  }
  // Budget respected, width is a power-of-two multiple of the base width.
  EXPECT_LE(s.points().size(), kBudget);
  EXPECT_GT(s.level(), 0u);
  EXPECT_EQ(s.width(), std::ldexp(1.0, static_cast<int>(s.level())));
  // Downsampling merges windows but never drops what they aggregate.
  std::uint64_t count = 0;
  double total = 0, min_seen = 1e9, max_seen = -1e9;
  for (const auto& p : s.points()) {
    count += p.count;
    total += p.sum();
    min_seen = std::min(min_seen, p.min);
    max_seen = std::max(max_seen, p.max);
    EXPECT_GT(p.count, 0u);
  }
  EXPECT_EQ(count, static_cast<std::uint64_t>(kSamples));
  EXPECT_EQ(s.samples(), static_cast<std::uint64_t>(kSamples));
  // Each sample carries at most half a quantum of snap error.
  EXPECT_NEAR(total, sum, kSamples * kSumQuantum / 2);
  EXPECT_EQ(min_seen, lo);
  EXPECT_EQ(max_seen, hi);
  // Windows stay sorted and unique.
  for (std::size_t i = 1; i < s.points().size(); ++i) {
    EXPECT_LT(s.points()[i - 1].bucket, s.points()[i].bucket);
  }
}

std::vector<std::pair<Seconds, double>> synthetic_stream(std::size_t n,
                                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Seconds, double>> stream;
  Seconds t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.uniform(0.0, 3.0);
    stream.emplace_back(t, rng.uniform(-50.0, 50.0));
  }
  return stream;
}

TEST(TimeSeriesTest, MergeOfHalvesEqualsWholeBitExactly) {
  // The supervised-sweep contract: feeding two halves into separate series
  // and merging gives the same bytes as one series fed the whole stream —
  // for ANY split, even mid-window, even when the halves coarsened to
  // different levels on the way.  This is what the integer-quanta sums buy.
  const auto stream = synthetic_stream(700, 99);
  for (const std::size_t split : {std::size_t{0}, std::size_t{17},
                                  std::size_t{350}, std::size_t{699}}) {
    TimeSeries whole(0.5, 32), left(0.5, 32), right(0.5, 32);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      whole.record(stream[i].first, stream[i].second);
      (i < split ? left : right).record(stream[i].first, stream[i].second);
    }
    left.merge_from(right);
    EXPECT_TRUE(left.same_as(whole)) << "split=" << split;
    EXPECT_EQ(left.to_bytes(), whole.to_bytes()) << "split=" << split;
    EXPECT_EQ(left.to_json(), whole.to_json()) << "split=" << split;
  }
}

TEST(TimeSeriesTest, MergeIsAssociative) {
  const auto stream = synthetic_stream(600, 7);
  auto thirds = [&](std::size_t k) {
    TimeSeries s(1.0, 16);
    for (std::size_t i = k * 200; i < (k + 1) * 200; ++i) {
      s.record(stream[i].first, stream[i].second);
    }
    return s;
  };
  // (a + b) + c
  TimeSeries ab = thirds(0);
  ab.merge_from(thirds(1));
  ab.merge_from(thirds(2));
  // a + (b + c)
  TimeSeries bc = thirds(1);
  bc.merge_from(thirds(2));
  TimeSeries a = thirds(0);
  a.merge_from(bc);
  EXPECT_EQ(ab.to_bytes(), a.to_bytes());

  // And both match the single-series run over the whole stream.
  TimeSeries whole(1.0, 16);
  for (const auto& [t, v] : stream) whole.record(t, v);
  EXPECT_EQ(ab.to_bytes(), whole.to_bytes());
}

TEST(TimeSeriesTest, SumQuantizationIsExactForGridValuesAndTiny) {
  // Integers and 2^-20 multiples pass through the quantizer unchanged;
  // arbitrary reals land within half a quantum.
  TimeSeries s(1.0, 8);
  s.record(0.0, 10.0);
  s.record(0.1, 20.0);
  EXPECT_EQ(s.points()[0].sum(), 30.0);
  EXPECT_EQ(s.points()[0].mean(), 15.0);

  TimeSeries grid(1.0, 8);
  grid.record(0.0, 5.0 * kSumQuantum);
  EXPECT_EQ(grid.points()[0].sum(), 5.0 * kSumQuantum);

  TimeSeries real(1.0, 8);
  real.record(0.0, 0.3);
  EXPECT_NEAR(real.points()[0].sum(), 0.3, kSumQuantum / 2);
  // min/max/last never go through the quantizer.
  EXPECT_EQ(real.points()[0].min, 0.3);
  EXPECT_EQ(real.points()[0].last, 0.3);

  EXPECT_THROW(real.record(1.0, std::nan("")), std::invalid_argument);
}

TEST(TimeSeriesTest, MergeRejectsMismatchedShape) {
  TimeSeries a(1.0, 16);
  EXPECT_THROW(a.merge_from(TimeSeries(2.0, 16)), std::invalid_argument);
  EXPECT_THROW(a.merge_from(TimeSeries(1.0, 32)), std::invalid_argument);
}

TEST(TimeSeriesTest, CodecRoundTripsBitExactly) {
  TimeSeries s(0.25, 8);
  for (const auto& [t, v] : synthetic_stream(300, 3)) s.record(t, v);
  const std::string bytes = s.to_bytes();
  const TimeSeries restored = TimeSeries::from_bytes(bytes);
  EXPECT_TRUE(restored.same_as(s));
  EXPECT_EQ(restored.to_bytes(), bytes);
  EXPECT_EQ(restored.to_json(), s.to_json());
}

TEST(TimeSeriesTest, CodecRejectsTruncationAtEveryOffset) {
  TimeSeries s(1.0, 4);
  for (int i = 0; i < 40; ++i) s.record(static_cast<Seconds>(i), i * 1.5);
  const std::string bytes = s.to_bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(TimeSeries::from_bytes(std::string_view(bytes).substr(0, len)),
                 std::runtime_error)
        << "accepted a record truncated to " << len << " bytes";
  }
}

TEST(TimeSeriesTest, CodecRejectsEverySingleByteCorruption) {
  // The crc32 tail covers the whole payload, so no single flipped byte —
  // payload or checksum — may slip through.
  TimeSeries s(1.0, 4);
  for (int i = 0; i < 20; ++i) s.record(static_cast<Seconds>(i), i * 2.0);
  const std::string bytes = s.to_bytes();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    EXPECT_THROW(TimeSeries::from_bytes(corrupt), std::runtime_error)
        << "accepted a record with byte " << i << " flipped";
  }
}

// --- Telemetry registry ----------------------------------------------------

TEST(TelemetryTest, RegistryIsDeterministicAndSorted) {
  const TelemetryConfig config{2.0, 16, false};
  Telemetry a(config), b(config);
  for (Telemetry* t : {&a, &b}) {
    t->sample("zeta", 1.0, 3.0);
    t->sample("alpha", 1.0, 1.0);
    t->sample("zeta", 3.0, 4.0);
    t->sample("mid", 2.0, 2.0);
  }
  EXPECT_EQ(a.series_count(), 3u);
  EXPECT_TRUE(a.same_as(b));
  EXPECT_EQ(a.to_bytes(), b.to_bytes());
  EXPECT_EQ(a.to_json(), b.to_json());
  // Sorted iteration: JSON lists series alphabetically regardless of the
  // order they were first sampled.
  const std::string json = a.to_json();
  EXPECT_LT(json.find("\"alpha\""), json.find("\"mid\""));
  EXPECT_LT(json.find("\"mid\""), json.find("\"zeta\""));
  EXPECT_NE(a.find("alpha"), nullptr);
  EXPECT_EQ(a.find("missing"), nullptr);
}

TEST(TelemetryTest, MergeUnionsSeriesAndRejectsConfigMismatch) {
  const TelemetryConfig config{1.0, 8, false};
  Telemetry whole(config), left(config), right(config);
  const auto stream = synthetic_stream(200, 11);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const char* name = i % 3 == 0 ? "shared" : (i % 3 == 1 ? "a" : "b");
    whole.sample(name, stream[i].first, stream[i].second);
    (i < 100 ? left : right).sample(name, stream[i].first, stream[i].second);
  }
  left.merge_from(right);
  EXPECT_TRUE(left.same_as(whole));
  EXPECT_EQ(left.to_bytes(), whole.to_bytes());

  Telemetry other(TelemetryConfig{2.0, 8, false});
  EXPECT_THROW(left.merge_from(other), std::invalid_argument);
}

TEST(TelemetryTest, CodecRoundTripsAndRejectsDamage) {
  Telemetry t(TelemetryConfig{0.5, 8, true});
  for (const auto& [at, v] : synthetic_stream(150, 23)) {
    t.sample("cell.power", at, v);
    t.sample("ue000.rrc", at, v > 0 ? 2.0 : 0.0);
  }
  const std::string bytes = t.to_bytes();
  const Telemetry restored = Telemetry::from_bytes(bytes);
  EXPECT_TRUE(restored.same_as(t));
  EXPECT_EQ(restored.to_bytes(), bytes);
  EXPECT_EQ(restored.config(), t.config());

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(Telemetry::from_bytes(std::string_view(bytes).substr(0, len)),
                 std::runtime_error)
        << "accepted a registry truncated to " << len << " bytes";
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    EXPECT_THROW(Telemetry::from_bytes(corrupt), std::runtime_error)
        << "accepted a registry with byte " << i << " flipped";
  }

  EXPECT_THROW(Telemetry(TelemetryConfig{0.0, 8, false}),
               std::invalid_argument);
  EXPECT_THROW(Telemetry(TelemetryConfig{1.0, 1, false}),
               std::invalid_argument);
}

// --- cell integration: the determinism contract ----------------------------

cell::CellConfig telemetry_cell(Seconds tick) {
  cell::CellConfig config;
  config.per_ue =
      core::ScenarioBuilder(browser::PipelineMode::kEnergyAware).build();
  const auto all = corpus::mobile_benchmark();
  config.specs = {all.begin(), all.begin() + 2};
  config.users = 6;
  config.channels = 2;
  config.horizon = 120.0;
  config.cell_seed = 7;
  config.telemetry_tick = tick;
  config.telemetry_budget = 64;
  return config;
}

/// The workload surface sampling must never bend (everything cell_test's
/// fingerprint covers except sim_events, which legitimately grows by the
/// tick count).
std::string workload_fingerprint(const cell::CellResult& r) {
  std::string out = std::to_string(r.offered) + "/" +
                    std::to_string(r.dropped) + "/" +
                    std::to_string(r.completed) + "/" +
                    std::to_string(r.aborted) + "/" +
                    std::to_string(r.grant_overcommits);
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "/%.17g/%.17g", r.end_time,
                r.mean_busy_grants);
  out += buffer;
  for (const auto& ue : r.per_ue) out += ue.energy.to_json();
  return out;
}

TEST(CellTelemetryTest, DisabledTelemetryLeavesResultNull) {
  const cell::CellResult off = cell::run_cell(telemetry_cell(0));
  EXPECT_EQ(off.telemetry, nullptr);
}

TEST(CellTelemetryTest, SamplingNeverBendsTheWorkload) {
  const cell::CellResult off = cell::run_cell(telemetry_cell(0));
  const cell::CellResult on = cell::run_cell(telemetry_cell(5.0));
  ASSERT_NE(on.telemetry, nullptr);
  EXPECT_GT(on.telemetry->series_count(), 0u);
  // Same trajectory to the last double; only the tick events are extra.
  EXPECT_EQ(workload_fingerprint(on), workload_fingerprint(off));
  EXPECT_GT(on.sim_events, off.sim_events);
  // The paper-facing metrics snapshot is frozen too, except cell.sim_events
  // — the one counter that legitimately includes the tick events.
  auto strip_sim_events = [](std::string json) {
    const auto begin = json.find("  \"cell.sim_events\"");
    const auto end = json.find('\n', begin);
    EXPECT_NE(begin, std::string::npos);
    json.erase(begin, end - begin + 1);
    return json;
  };
  EXPECT_EQ(strip_sim_events(on.metrics.to_json()),
            strip_sim_events(off.metrics.to_json()));
}

TEST(CellTelemetryTest, SameSeedSampledRunsAreBitIdentical) {
  const cell::CellResult a = cell::run_cell(telemetry_cell(5.0));
  const cell::CellResult b = cell::run_cell(telemetry_cell(5.0));
  ASSERT_NE(a.telemetry, nullptr);
  ASSERT_NE(b.telemetry, nullptr);
  EXPECT_TRUE(a.telemetry->same_as(*b.telemetry));
  EXPECT_EQ(a.telemetry->to_bytes(), b.telemetry->to_bytes());
  EXPECT_EQ(a.telemetry->to_json(), b.telemetry->to_json());
}

TEST(CellTelemetryTest, PerUeSeriesAreOptIn) {
  auto config = telemetry_cell(5.0);
  const cell::CellResult cell_only = cell::run_cell(config);
  config.telemetry_per_ue = true;
  const cell::CellResult per_ue = cell::run_cell(config);
  ASSERT_NE(cell_only.telemetry, nullptr);
  ASSERT_NE(per_ue.telemetry, nullptr);
  EXPECT_EQ(cell_only.telemetry->find("ue000.rrc_state"), nullptr);
  EXPECT_NE(per_ue.telemetry->find("ue000.rrc_state"), nullptr);
  // The cell-level series are unchanged by turning the per-UE ones on.
  for (const auto& [name, series] : cell_only.telemetry->all()) {
    const TimeSeries* twin = per_ue.telemetry->find(name);
    ASSERT_NE(twin, nullptr) << name;
    EXPECT_TRUE(twin->same_as(series)) << name;
  }
}

TEST(CellTelemetryTest, ShardedRunsProduceBitIdenticalSeries) {
  auto config = telemetry_cell(5.0);
  ASSERT_EQ(config.sim_shards, 1);
  const cell::CellResult single = cell::run_cell(config);
  ASSERT_NE(single.telemetry, nullptr);
  for (int shards : {2, 4, 7}) {
    config.sim_shards = shards;
    const cell::CellResult sharded = cell::run_cell(config);
    ASSERT_NE(sharded.telemetry, nullptr) << "shards=" << shards;
    EXPECT_EQ(workload_fingerprint(sharded), workload_fingerprint(single))
        << "shards=" << shards;
    EXPECT_EQ(sharded.sim_events, single.sim_events) << "shards=" << shards;
    EXPECT_EQ(sharded.telemetry->to_bytes(), single.telemetry->to_bytes())
        << "shards=" << shards;
  }
}

TEST(CellTelemetryTest, ResultSerializationCarriesSeriesBitExactly) {
  const cell::CellResult original = cell::run_cell(telemetry_cell(5.0));
  ASSERT_NE(original.telemetry, nullptr);
  const cell::CellResult restored =
      cell::deserialize_cell_result(cell::serialize_cell_result(original));
  ASSERT_NE(restored.telemetry, nullptr);
  EXPECT_TRUE(restored.telemetry->same_as(*original.telemetry));
  EXPECT_EQ(cell::serialize_cell_result(restored),
            cell::serialize_cell_result(original));

  // Telemetry-off results round-trip to a null registry, not an empty one.
  const cell::CellResult off = cell::run_cell(telemetry_cell(0));
  const cell::CellResult off_restored =
      cell::deserialize_cell_result(cell::serialize_cell_result(off));
  EXPECT_EQ(off_restored.telemetry, nullptr);
}

TEST(CellTelemetryTest, SupervisedSweepCarriesSeriesBitIdentically) {
  // The end-to-end determinism chain: in-process sweep == forked-worker
  // supervised sweep, series included, byte for byte.
  const auto config = telemetry_cell(5.0);
  const std::vector<int> axis{2, 4, 6};
  core::BatchRunner runner(1);
  const auto reference = cell::run_cell_sweep(config, axis, runner);

  core::SupervisorConfig sup_config;
  sup_config.workers = 2;
  core::Supervisor supervisor(sup_config);
  const auto supervised =
      cell::run_cell_sweep_supervised(config, axis, supervisor);

  ASSERT_EQ(supervised.size(), reference.size());
  for (std::size_t i = 0; i < axis.size(); ++i) {
    ASSERT_NE(reference[i].telemetry, nullptr) << "users=" << axis[i];
    ASSERT_NE(supervised[i].telemetry, nullptr) << "users=" << axis[i];
    EXPECT_EQ(supervised[i].telemetry->to_bytes(),
              reference[i].telemetry->to_bytes())
        << "users=" << axis[i];
    EXPECT_EQ(cell::serialize_cell_result(supervised[i]),
              cell::serialize_cell_result(reference[i]))
        << "users=" << axis[i];
  }
}

}  // namespace
}  // namespace eab::obs
