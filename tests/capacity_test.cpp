#include "capacity/mgn.hpp"

#include <gtest/gtest.h>

namespace eab::capacity {
namespace {

TEST(ServiceTimeDistribution, MeanAndSampling) {
  ServiceTimeDistribution dist({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(dist.mean(), 20.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const Seconds s = dist.sample(rng);
    EXPECT_GE(s, 9.0);   // 10 * 0.9
    EXPECT_LE(s, 33.0);  // 30 * 1.1
  }
}

TEST(ServiceTimeDistribution, SampleMeanConverges) {
  ServiceTimeDistribution dist({5.0, 15.0});
  Rng rng(2);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += dist.sample(rng);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(ServiceTimeDistribution, RejectsBadInput) {
  EXPECT_THROW(ServiceTimeDistribution({}), std::invalid_argument);
  EXPECT_THROW(ServiceTimeDistribution({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(ServiceTimeDistribution({-2.0}), std::invalid_argument);
}

TEST(ErlangB, KnownValues) {
  // B(A=1, N=1) = 1/2; B(A=1, N=2) = 1/5.
  EXPECT_NEAR(erlang_b(1.0, 1), 0.5, 1e-12);
  EXPECT_NEAR(erlang_b(1.0, 2), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(erlang_b(5.0, 0), 1.0);
  EXPECT_LT(erlang_b(100.0, 200), 1e-6);
  EXPECT_THROW(erlang_b(1.0, -1), std::invalid_argument);
}

TEST(ErlangB, MonotoneInLoadAndChannels) {
  EXPECT_GT(erlang_b(10.0, 8), erlang_b(5.0, 8));
  EXPECT_LT(erlang_b(10.0, 16), erlang_b(10.0, 8));
}

TEST(Capacity, NoLoadNoDrops) {
  CapacityConfig config;
  config.users = 1;
  config.horizon = 3600;
  ServiceTimeDistribution dist({1.0});
  const auto result = simulate_capacity(config, dist, 1);
  EXPECT_EQ(result.dropped_sessions, 0u);
  EXPECT_GT(result.offered_sessions, 50u);
}

TEST(Capacity, SaturatedSystemDropsMost) {
  CapacityConfig config;
  config.channels = 2;
  config.users = 100;
  config.horizon = 2000;
  ServiceTimeDistribution dist({100.0});  // very long sessions
  const auto result = simulate_capacity(config, dist, 1);
  EXPECT_GT(result.drop_probability, 0.8);
  EXPECT_NEAR(result.mean_busy_channels, 2.0, 0.2);
}

TEST(Capacity, DropProbabilityIncreasesWithUsers) {
  ServiceTimeDistribution dist({15.0});
  CapacityConfig config;
  config.horizon = 4000;
  double previous = -1;
  for (int users : {200, 400, 600}) {
    config.users = users;
    const auto result = simulate_capacity(config, dist, 7);
    EXPECT_GE(result.drop_probability, previous);
    previous = result.drop_probability;
  }
  EXPECT_GT(previous, 0.05);
}

TEST(Capacity, ShorterServiceRaisesCapacity) {
  // The paper's Fig 11 mechanism: shorter transmission times -> fewer drops
  // at the same user count.
  CapacityConfig config;
  config.users = 450;
  config.horizon = 4000;
  const auto slow = simulate_capacity(config, ServiceTimeDistribution({16.0}), 7);
  const auto fast = simulate_capacity(config, ServiceTimeDistribution({12.0}), 7);
  EXPECT_LT(fast.drop_probability, slow.drop_probability);
}

TEST(Capacity, MatchesErlangBForExponentialService) {
  // Insensitivity check: with users >> channels the arrival stream is
  // near-Poisson; offered load A = users * mean_service / mean_think.
  CapacityConfig config;
  config.channels = 20;
  config.users = 2000;
  config.mean_interarrival = 100.0;
  config.horizon = 20000.0;
  ServiceTimeDistribution dist({1.0});  // ~deterministic 1 s (insensitive)
  const auto result = simulate_capacity(config, dist, 11);
  const double offered = 2000 * 1.0 / 100.0;  // 20 erlangs
  const double expected = erlang_b(offered, 20);
  EXPECT_NEAR(result.drop_probability, expected, expected * 0.25);
}

TEST(Capacity, DeterministicForSeed) {
  CapacityConfig config;
  config.users = 300;
  config.horizon = 2000;
  ServiceTimeDistribution dist({10.0, 20.0});
  const auto a = simulate_capacity(config, dist, 3);
  const auto b = simulate_capacity(config, dist, 3);
  EXPECT_EQ(a.offered_sessions, b.offered_sessions);
  EXPECT_EQ(a.dropped_sessions, b.dropped_sessions);
}

TEST(Capacity, ValidatesConfig) {
  ServiceTimeDistribution dist({1.0});
  CapacityConfig config;
  config.channels = 0;
  EXPECT_THROW(simulate_capacity(config, dist, 1), std::invalid_argument);
  config.channels = 10;
  config.users = 0;
  EXPECT_THROW(simulate_capacity(config, dist, 1), std::invalid_argument);
}

}  // namespace
}  // namespace eab::capacity
