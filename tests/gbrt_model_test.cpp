#include "gbrt/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace eab::gbrt {
namespace {

Dataset nonlinear_data(std::uint64_t seed, int n, double noise) {
  Rng rng(seed);
  Dataset data(2);
  for (int i = 0; i < n; ++i) {
    const double a = rng.uniform(-3, 3);
    const double b = rng.uniform(-3, 3);
    // Non-monotone target: a bell over `a` plus an interaction.
    const double y = 5 * std::exp(-a * a) + (a > 0 && b > 0 ? 2.0 : 0.0) +
                     rng.normal(0, noise);
    data.add({a, b}, y);
  }
  return data;
}

TEST(GbrtTrainer, TrainingLossDecreasesMonotonically) {
  const Dataset data = nonlinear_data(1, 500, 0.1);
  GbrtParams params;
  params.trees = 60;
  params.shrinkage = 0.1;
  BoostTrace trace;
  train_gbrt(data, params, 1, &trace);
  ASSERT_EQ(trace.train_mse.size(), 60u);
  for (std::size_t i = 1; i < trace.train_mse.size(); ++i) {
    EXPECT_LE(trace.train_mse[i], trace.train_mse[i - 1] + 1e-9) << i;
  }
  EXPECT_LT(trace.train_mse.back(), trace.train_mse.front() * 0.3);
}

TEST(GbrtTrainer, BeatsConstantBaselineOnHeldOut) {
  const Dataset data = nonlinear_data(2, 2000, 0.2);
  const auto [train, test] = data.split(0.75);
  GbrtParams params;
  params.trees = 150;
  params.shrinkage = 0.1;
  const GbrtModel model = train_gbrt(train, params, 1);

  // Constant baseline: median of training targets.
  std::vector<double> targets = train.targets();
  std::nth_element(targets.begin(), targets.begin() + targets.size() / 2,
                   targets.end());
  const double constant = targets[targets.size() / 2];
  double constant_mse = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const double diff = test.target(i) - constant;
    constant_mse += diff * diff;
  }
  constant_mse /= static_cast<double>(test.size());

  EXPECT_LT(mse(model, test), constant_mse * 0.35);
}

TEST(GbrtTrainer, BaseScoreIsTargetMedian) {
  Dataset data(1);
  for (double y : {1.0, 2.0, 3.0, 4.0, 100.0}) data.add({y}, y);
  GbrtParams params;
  params.trees = 0;
  const GbrtModel model = train_gbrt(data, params, 1);
  EXPECT_DOUBLE_EQ(model.base_score(), 3.0);
  EXPECT_DOUBLE_EQ(model.predict({0.0}), 3.0);
}

TEST(GbrtTrainer, DeterministicGivenSeed) {
  const Dataset data = nonlinear_data(3, 300, 0.1);
  GbrtParams params;
  params.trees = 20;
  const GbrtModel a = train_gbrt(data, params, 7);
  const GbrtModel b = train_gbrt(data, params, 7);
  EXPECT_EQ(a.serialize(), b.serialize());
}

TEST(GbrtTrainer, SubsamplingStillLearns) {
  const Dataset data = nonlinear_data(4, 2000, 0.2);
  const auto [train, test] = data.split(0.75);
  GbrtParams params;
  params.trees = 150;
  params.subsample = 0.5;
  const GbrtModel model = train_gbrt(train, params, 1);
  EXPECT_LT(mse(model, test), 1.5);
}

TEST(GbrtTrainer, ValidatesParams) {
  const Dataset data = nonlinear_data(5, 50, 0.1);
  GbrtParams params;
  params.shrinkage = 0.0;
  EXPECT_THROW(train_gbrt(data, params, 1), std::invalid_argument);
  params.shrinkage = 0.1;
  params.subsample = 0.0;
  EXPECT_THROW(train_gbrt(data, params, 1), std::invalid_argument);
  EXPECT_THROW(train_gbrt(Dataset(1), GbrtParams{}, 1), std::invalid_argument);
}

TEST(GbrtModel, PredictionIsShrunkSumOfTrees) {
  const GbrtModel model = GbrtModel::assemble(
      10.0, 0.5,
      {RegressionTree::constant(2.0), RegressionTree::constant(4.0)});
  EXPECT_DOUBLE_EQ(model.predict({0.0}), 10.0 + 0.5 * (2.0 + 4.0));
  EXPECT_EQ(model.tree_count(), 2u);
}

TEST(GbrtModel, SerializeRoundTrip) {
  const Dataset data = nonlinear_data(6, 400, 0.1);
  GbrtParams params;
  params.trees = 25;
  const GbrtModel model = train_gbrt(data, params, 1);
  const GbrtModel parsed = GbrtModel::parse(model.serialize());
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x = {rng.uniform(-3, 3), rng.uniform(-3, 3)};
    EXPECT_DOUBLE_EQ(parsed.predict(x), model.predict(x));
  }
}

TEST(GbrtModel, ParseRejectsGarbage) {
  EXPECT_THROW(GbrtModel::parse(""), std::invalid_argument);
  EXPECT_THROW(GbrtModel::parse("nope 1 2 3"), std::invalid_argument);
  EXPECT_THROW(GbrtModel::parse("gbrt 0 0.1 5\n"), std::invalid_argument);
}

TEST(GbrtModel, FeatureImportanceConcentratesOnSignal) {
  Rng rng(7);
  Dataset data(3);
  for (int i = 0; i < 1000; ++i) {
    const double signal = rng.uniform(-1, 1);
    data.add({rng.uniform(-1, 1), signal, rng.uniform(-1, 1)}, signal * 3);
  }
  GbrtParams params;
  params.trees = 40;
  const GbrtModel model = train_gbrt(data, params, 1);
  const auto importance = model.feature_importance(3);
  EXPECT_GT(importance[1], 0.9);
  EXPECT_NEAR(importance[0] + importance[1] + importance[2], 1.0, 1e-9);
}

TEST(GbrtModel, RandomModelShape) {
  const GbrtModel model = GbrtModel::random_model(50, 4, 10, 3);
  EXPECT_EQ(model.tree_count(), 50u);
  // Deterministic and usable.
  const GbrtModel again = GbrtModel::random_model(50, 4, 10, 3);
  std::vector<double> x(10, 0.5);
  EXPECT_DOUBLE_EQ(model.predict(x), again.predict(x));
}

TEST(Metrics, ThresholdAccuracy) {
  EXPECT_DOUBLE_EQ(threshold_accuracy({1, 10, 3, 20}, {2, 15, 1, 30}, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(threshold_accuracy({1, 10}, {10, 1}, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(threshold_accuracy({1, 10, 10, 1}, {2, 2, 20, 20}, 5.0), 0.5);
  EXPECT_THROW(threshold_accuracy({1}, {1, 2}, 5.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(threshold_accuracy({}, {}, 5.0), 0.0);
}

TEST(Metrics, MseOfPerfectModelIsZero) {
  Dataset data(1);
  data.add({1.0}, 5.0);
  const GbrtModel model =
      GbrtModel::assemble(5.0, 1.0, std::vector<RegressionTree>{});
  EXPECT_DOUBLE_EQ(mse(model, data), 0.0);
}

// Property sweep over shrinkage: smaller steps need more trees but converge
// to at least as good a fit.
class ShrinkageSweep : public ::testing::TestWithParam<double> {};

TEST_P(ShrinkageSweep, ConvergesOnTrainingData) {
  const Dataset data = nonlinear_data(8, 600, 0.15);
  GbrtParams params;
  params.trees = static_cast<std::size_t>(30.0 / GetParam());
  params.shrinkage = GetParam();
  const GbrtModel model = train_gbrt(data, params, 1);
  EXPECT_LT(mse(model, data), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Rates, ShrinkageSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.5));

}  // namespace
}  // namespace eab::gbrt
