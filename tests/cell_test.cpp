// Multi-UE shared-cell co-simulation: determinism (serial == sharded),
// grant-pool accounting under exhaustion, the qualitative Fig 11 capacity
// claim from first principles, a chaos sweep over cell scenarios, and the
// checked-in service-time quantiles for the M/G/N satellite.
#include "cell/cell.hpp"
#include "cell/service_times.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "obs/audit.hpp"

namespace eab::cell {
namespace {

std::vector<corpus::PageSpec> small_mix() {
  const auto all = corpus::mobile_benchmark();
  return {all.begin(), all.begin() + 2};
}

CellConfig small_cell(browser::PipelineMode mode) {
  CellConfig config;
  config.per_ue = core::ScenarioBuilder(mode).build();
  config.specs = small_mix();
  config.users = 6;
  config.channels = 2;
  config.horizon = 120.0;
  config.cell_seed = 7;
  return config;
}

/// Bit-exact comparison surface for one run: every aggregate counter plus
/// each UE's full energy report (%.17g via to_json).
std::string fingerprint(const CellResult& r) {
  std::string out = std::to_string(r.offered) + "/" +
                    std::to_string(r.dropped) + "/" +
                    std::to_string(r.completed) + "/" +
                    std::to_string(r.aborted) + "/" +
                    std::to_string(r.sim_events) + "/" +
                    std::to_string(r.grant_overcommits);
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "/%.17g/%.17g", r.end_time,
                r.mean_busy_grants);
  out += buffer;
  for (const auto& ue : r.per_ue) out += ue.energy.to_json();
  return out;
}

TEST(CellTest, SameSeedSameResult) {
  const auto config = small_cell(browser::PipelineMode::kEnergyAware);
  const CellResult a = run_cell(config);
  const CellResult b = run_cell(config);
  EXPECT_GT(a.offered, 0u);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(CellTest, ShardedEventQueuesAreBitIdenticalToSingleQueue) {
  // The sharded multi-queue engine is a pure performance knob: any shard
  // count must reproduce the single-queue run bit for bit — same counters,
  // same per-UE energy to the last double.
  CellConfig config = small_cell(browser::PipelineMode::kEnergyAware);
  config.users = 20;
  config.channels = 4;
  ASSERT_EQ(config.sim_shards, 1);
  const CellResult single = run_cell(config);
  EXPECT_GT(single.offered, 0u);
  for (int shards : {2, 4, 7}) {
    config.sim_shards = shards;
    const CellResult sharded = run_cell(config);
    EXPECT_EQ(fingerprint(sharded), fingerprint(single))
        << "shards=" << shards;
    EXPECT_EQ(sharded.metrics.to_json(), single.metrics.to_json())
        << "shards=" << shards;
  }
}

TEST(CellTest, SweepSerialEqualsSharded) {
  const auto config = small_cell(browser::PipelineMode::kOriginal);
  const std::vector<int> axis{2, 4, 6};
  core::BatchRunner serial(1);
  core::BatchRunner pooled(3);
  const auto a = run_cell_sweep(config, axis, serial);
  const auto b = run_cell_sweep(config, axis, pooled);
  ASSERT_EQ(a.size(), axis.size());
  ASSERT_EQ(b.size(), axis.size());
  for (std::size_t i = 0; i < axis.size(); ++i) {
    EXPECT_EQ(a[i].users, axis[i]);
    EXPECT_EQ(fingerprint(a[i]), fingerprint(b[i]));
  }
}

TEST(CellTest, CellResultSerializationRoundTripsBitExactly) {
  auto config = small_cell(browser::PipelineMode::kEnergyAware);
  config.abort_rate = 0.2;  // exercise the aborted counters too
  const CellResult original = run_cell(config);
  const CellResult restored =
      deserialize_cell_result(serialize_cell_result(original));
  EXPECT_EQ(fingerprint(restored), fingerprint(original));
  EXPECT_EQ(serialize_cell_result(restored), serialize_cell_result(original));
  EXPECT_TRUE(restored.metrics.same_as(original.metrics));
  ASSERT_EQ(restored.per_ue.size(), original.per_ue.size());
  for (std::size_t i = 0; i < restored.per_ue.size(); ++i) {
    EXPECT_EQ(restored.per_ue[i].energy.to_json(),
              original.per_ue[i].energy.to_json());
  }

  EXPECT_THROW(deserialize_cell_result("torn"), std::runtime_error);
}

TEST(CellTest, SerializingTracedResultsIsRejected) {
  auto config = small_cell(browser::PipelineMode::kEnergyAware);
  config.users = 2;
  config.horizon = 30.0;
  config.per_ue.stack.trace = true;
  const CellResult traced = run_cell(config);
  EXPECT_THROW(serialize_cell_result(traced), std::invalid_argument);

  core::Supervisor supervisor;
  EXPECT_THROW(
      run_cell_sweep_supervised(config, {2}, supervisor),
      std::invalid_argument);
}

TEST(CellTest, SupervisedSweepIsBitIdenticalToInProcessSweep) {
  // The whole point of the supervision layer: forked workers, streaming
  // merge, any worker count — same bytes as the in-process BatchRunner
  // sweep.
  const auto config = small_cell(browser::PipelineMode::kOriginal);
  const std::vector<int> axis{2, 4, 6};
  core::BatchRunner runner(1);
  const auto reference = run_cell_sweep(config, axis, runner);

  core::SupervisorConfig sup_config;
  sup_config.workers = 2;
  core::Supervisor supervisor(sup_config);
  const auto supervised = run_cell_sweep_supervised(config, axis, supervisor);

  ASSERT_EQ(supervised.size(), reference.size());
  for (std::size_t i = 0; i < axis.size(); ++i) {
    EXPECT_EQ(supervised[i].users, axis[i]);
    EXPECT_EQ(serialize_cell_result(supervised[i]),
              serialize_cell_result(reference[i]))
        << "users=" << axis[i];
    EXPECT_TRUE(supervised[i].metrics.same_as(reference[i].metrics));
  }
}

TEST(CellTest, GrantExhaustionDropsSessionsAndStaysClean) {
  auto config = small_cell(browser::PipelineMode::kOriginal);
  config.users = 50;
  config.channels = 2;
  config.horizon = 60.0;
  config.per_ue.stack.trace = true;
  const CellResult result = run_cell(config);

  // 50 users on 2 grants: admission must block, and blocked sessions must
  // not leave anything behind.
  EXPECT_GT(result.dropped, 0u);
  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(result.leaked_flows, 0u);
  if (result.grant_overcommits == 0) {
    EXPECT_LE(result.peak_busy_grants, config.channels);
  }
  EXPECT_GT(result.mean_grant_hold, 0.0);

  // Every UE's trace audits clean against its own radio timeline: no leaked
  // transfer markers, no unsettled fetches, energy reconciles.
  obs::TraceAuditor auditor;
  int audited = 0;
  ASSERT_EQ(result.per_ue.size(), static_cast<std::size_t>(config.users));
  for (const auto& ue : result.per_ue) {
    ASSERT_NE(ue.trace, nullptr);
    obs::AuditInputs inputs;
    inputs.rrc = config.per_ue.stack.rrc;
    inputs.power = config.per_ue.stack.power;
    inputs.max_retries = config.per_ue.stack.retry.max_retries;
    inputs.radio_energy = ue.energy.radio_j;
    inputs.t_end = result.end_time;
    const auto report = auditor.audit(*ue.trace, inputs);
    EXPECT_TRUE(report.ok()) << "ue " << audited << ":\n" << report.summary();
    ++audited;
  }
  EXPECT_EQ(audited, config.users);
}

TEST(CellTest, EnergyAwareAdmitsAtLeastAsManyUsersAtEqualDropTarget) {
  // Enough contention and enough sessions that the capacity gap clears the
  // run-to-run noise of a finite horizon (the bench sweeps a bigger cell).
  const std::vector<int> axis{3, 6, 9, 12, 15, 18};
  core::BatchRunner runner(1);

  auto orig = small_cell(browser::PipelineMode::kOriginal);
  auto ea = small_cell(browser::PipelineMode::kEnergyAware);
  orig.channels = ea.channels = 3;
  orig.horizon = ea.horizon = 360.0;
  const auto orig_results = run_cell_sweep(orig, axis, runner);
  const auto ea_results = run_cell_sweep(ea, axis, runner);

  // Both drop curves are (weakly) monotone in #users...
  for (std::size_t i = 1; i < axis.size(); ++i) {
    EXPECT_GE(orig_results[i].drop_probability() + 0.02,
              orig_results[i - 1].drop_probability());
    EXPECT_GE(ea_results[i].drop_probability() + 0.02,
              ea_results[i - 1].drop_probability());
  }
  // ...and fast dormancy frees grants sooner, so the energy-aware pipeline
  // supports at least as many users at the 5 % service level (Fig 11).
  const double cap_orig = users_at_drop_target(axis, orig_results, 0.05);
  const double cap_ea = users_at_drop_target(axis, ea_results, 0.05);
  EXPECT_GE(cap_ea, cap_orig);
  // Shorter holds also show up directly in the grant ledger.
  EXPECT_LT(ea_results.back().mean_grant_hold,
            orig_results.back().mean_grant_hold);
}

TEST(CellTest, ChaosSweepOverCellScenarios) {
  // 32 seeds of aborts + request faults + RIL failures over a small cell:
  // every run must terminate (no budget blowups), keep the grant ledger
  // balanced and leak nothing, whatever the fault timing.
  // EAB_CELL_CHAOS_SEEDS trims the sweep for expensive builds — check.sh
  // replays 16 seeds under ASan to guard the session-teardown lifetimes.
  std::uint64_t seeds = 32;
  if (const char* raw = std::getenv("EAB_CELL_CHAOS_SEEDS")) {
    const long parsed = std::strtol(raw, nullptr, 10);
    if (parsed >= 1 && parsed <= 64) seeds = static_cast<std::uint64_t>(parsed);
  }
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    auto config = small_cell(seed % 2 == 0
                                 ? browser::PipelineMode::kEnergyAware
                                 : browser::PipelineMode::kOriginal);
    config.users = 4;
    config.horizon = 90.0;
    config.cell_seed = seed;
    config.abort_rate = 0.25;
    config.per_ue.stack.fault_plan.connection_loss_rate = 0.05;
    config.per_ue.stack.fault_plan.stall_rate = 0.03;
    config.per_ue.stack.fault_plan.truncate_rate = 0.05;
    config.per_ue.stack.retry.request_timeout = 4.0;  // stalls need a watchdog
    config.per_ue.stack.chaos.ril_socket_failures = seed % 3 == 0 ? 2 : 0;
    const CellResult result = run_cell(config);
    EXPECT_GT(result.offered, 0u) << "seed " << seed;
    EXPECT_EQ(result.offered,
              result.dropped + result.completed + result.aborted +
                  0u * result.users)
        << "seed " << seed;
    EXPECT_EQ(result.leaked_flows, 0u) << "seed " << seed;
  }
}

TEST(CellTest, OutageSweepSerialShardedSupervisedBitIdentical) {
  // 32 seeds of a degraded-radio cell — every UE runs its own coverage
  // process (with re-establishment failures) underneath two whole-cell
  // blackouts — and for every seed the serial single-queue run, the sharded
  // engine at K in {2, 4, 7} and a supervised run must produce the same
  // bytes through serialize_cell_result (radio-failure counters included).
  // EAB_CELL_OUTAGE_SEEDS trims the sweep for expensive builds (ASan).
  std::uint64_t seeds = 32;
  if (const char* raw = std::getenv("EAB_CELL_OUTAGE_SEEDS")) {
    const long parsed = std::strtol(raw, nullptr, 10);
    if (parsed >= 1 && parsed <= 64) seeds = static_cast<std::uint64_t>(parsed);
  }
  radio::OutagePlan plan;
  plan.seed = 9;
  plan.count = 2;
  plan.start = 2.0;
  plan.period = 25.0;
  plan.duration = 2.0;
  plan.reestablish_fail_rate = 0.4;

  core::SupervisorConfig sup_config;
  sup_config.workers = 2;

  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const auto mode = seed % 2 == 0 ? browser::PipelineMode::kEnergyAware
                                    : browser::PipelineMode::kOriginal;
    CellConfig config = small_cell(mode);
    config.per_ue = core::ScenarioBuilder(mode).outage(plan).build();
    config.users = 5;
    config.horizon = 60.0;
    config.cell_seed = 1000 + seed;
    config.cell_outage_count = 2;
    config.cell_outage_start = 10.0;
    config.cell_outage_period = 25.0;
    config.cell_outage_duration = 3.0;

    ASSERT_EQ(config.sim_shards, 1);
    const CellResult serial = run_cell(config);
    EXPECT_GT(serial.offered, 0u) << "seed " << seed;
    EXPECT_EQ(serial.leaked_flows, 0u) << "seed " << seed;
    EXPECT_GT(serial.cell_outages, 0u) << "seed " << seed;
    const std::string reference = serialize_cell_result(serial);

    for (int shards : {2, 4, 7}) {
      config.sim_shards = shards;
      EXPECT_EQ(serialize_cell_result(run_cell(config)), reference)
          << "seed " << seed << " shards " << shards;
    }
    config.sim_shards = 1;

    core::Supervisor supervisor(sup_config);
    const auto supervised =
        run_cell_sweep_supervised(config, {config.users}, supervisor);
    ASSERT_EQ(supervised.size(), 1u);
    EXPECT_EQ(serialize_cell_result(supervised[0]), reference)
        << "seed " << seed << " supervised";
  }
}

TEST(CellTest, RejectsContradictoryConfigs) {
  const auto good = small_cell(browser::PipelineMode::kOriginal);

  auto bad = good;
  bad.specs.clear();
  EXPECT_THROW(run_cell(bad), std::invalid_argument);

  bad = good;
  bad.users = 0;
  EXPECT_THROW(run_cell(bad), std::invalid_argument);

  bad = good;
  bad.channels = 0;
  EXPECT_THROW(run_cell(bad), std::invalid_argument);

  bad = good;
  bad.mean_think_time = 0;
  EXPECT_THROW(run_cell(bad), std::invalid_argument);

  bad = good;
  bad.abort_rate = 1.5;
  EXPECT_THROW(run_cell(bad), std::invalid_argument);

  bad = good;
  bad.sim_event_budget = 0;
  EXPECT_THROW(run_cell(bad), std::invalid_argument);

  // The per-UE template goes through the same ScenarioBuilder validation as
  // every single-UE experiment: a stall plan without a watchdog is rejected
  // before any simulation starts.
  bad = good;
  bad.per_ue.stack.fault_plan.stall_rate = 0.1;
  bad.per_ue.stack.retry.request_timeout = 0.0;
  EXPECT_THROW(run_cell(bad), std::invalid_argument);
}

// --- service-time satellite ------------------------------------------------

TEST(ServiceTimeTest, MatchesDirectSingleLoads) {
  // With the default sampling config (one sample per spec, seed 1) the
  // measured vector must equal the historical per-spec sweep exactly —
  // this is what keeps the default-mode Fig 11 output byte-identical.
  const auto specs = small_mix();
  core::BatchRunner runner(1);
  const capacity::CapacityConfig config;
  const auto times = measure_service_times(
      specs, browser::PipelineMode::kEnergyAware, config, runner);
  ASSERT_EQ(times.size(), specs.size());
  const auto stack =
      core::StackConfig::for_mode(browser::PipelineMode::kEnergyAware);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto direct = core::run_single_load(specs[i], stack, 20.0, 1);
    EXPECT_EQ(times[i], direct.metrics.transmission_time()) << specs[i].site;
  }
}

TEST(ServiceTimeTest, MultiSampleUsesDerivedSeeds) {
  const auto specs = small_mix();
  core::BatchRunner runner(1);
  capacity::CapacityConfig config;
  config.service_samples_per_spec = 3;
  const auto times = measure_service_times(
      specs, browser::PipelineMode::kOriginal, config, runner);
  ASSERT_EQ(times.size(), specs.size() * 3);
  // Sample 0 of each spec is the seed-1 historical load; further samples
  // use derived seeds and may legitimately coincide in transmission time,
  // but the sweep itself must be reproducible.
  const auto again = measure_service_times(
      specs, browser::PipelineMode::kOriginal, config, runner);
  EXPECT_EQ(times, again);
}

TEST(ServiceTimeTest, QuantileEstimatorIsDeterministic) {
  const std::vector<Seconds> samples{4.0, 1.0, 3.0, 2.0};
  const auto q = service_time_quantiles(samples, {0.0, 0.5, 1.0});
  ASSERT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q[0], 1.0);
  EXPECT_DOUBLE_EQ(q[1], 2.5);
  EXPECT_DOUBLE_EQ(q[2], 4.0);
  EXPECT_THROW(service_time_quantiles({}, {0.5}), std::invalid_argument);
  EXPECT_THROW(service_time_quantiles(samples, {1.5}), std::invalid_argument);
}

TEST(ServiceTimeTest, CheckedInQuantilesRegenerateBitIdentically) {
  // Reference service-time quantiles for the mobile benchmark at the
  // default sampling config (seed 1, one sample per spec).  Regenerated
  // with %.17g: any change to the stack that moves a transmission time —
  // however slightly — must update these on purpose, never silently.
  core::BatchRunner runner(0);
  const capacity::CapacityConfig config;
  const std::vector<double> probs{0.1, 0.5, 0.9};

  const auto orig_q = service_time_quantiles(
      measure_service_times(corpus::mobile_benchmark(),
                            browser::PipelineMode::kOriginal, config, runner),
      probs);
  const auto ea_q = service_time_quantiles(
      measure_service_times(corpus::mobile_benchmark(),
                            browser::PipelineMode::kEnergyAware, config,
                            runner),
      probs);

  const std::vector<double> expected_orig{
      6.88814429352678470, 7.42266199720982378, 8.32310692745535619};
  const std::vector<double> expected_ea{
      6.29050456138392899, 6.65449312165178597, 7.03782138392857082};
  ASSERT_EQ(orig_q.size(), expected_orig.size());
  ASSERT_EQ(ea_q.size(), expected_ea.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    EXPECT_EQ(orig_q[i], expected_orig[i])
        << "original q" << probs[i] << " is " << std::scientific << orig_q[i];
    EXPECT_EQ(ea_q[i], expected_ea[i])
        << "energy-aware q" << probs[i] << " is " << std::scientific
        << ea_q[i];
  }
}

}  // namespace
}  // namespace eab::cell
